//! # par — scoped work-stealing data parallelism, zero dependencies
//!
//! The workspace is fully offline (no rayon), yet the RAPMiner hot paths —
//! Algorithm 2's per-layer combination evaluation, Algorithm 1's
//! per-attribute CP scan, and the eval runner's per-case fan-out — are
//! embarrassingly parallel. This crate provides the one primitive they all
//! need: an **order-preserving parallel map** over a slice.
//!
//! Design:
//!
//! * No persistent worker threads. Every [`Pool::map`] call opens a
//!   [`std::thread::scope`], so borrowed inputs (`&LeafIndex`, `&[Case]`)
//!   work without `Arc` gymnastics and there is no global state to poison.
//! * Work stealing over contiguous index ranges. Each worker owns a
//!   `Mutex<(start, end)>` range of the input; when its range drains it
//!   steals the back half of the largest remaining victim range. Long items
//!   therefore cannot serialize the tail the way static chunking does.
//! * **Determinism by construction**: results are merged by input index,
//!   never by completion order. `pool.map(items, f)` is observably
//!   equivalent to `items.iter().enumerate().map(f).collect()` for any pure
//!   `f`, regardless of thread count, scheduling, or steals.
//! * A pool with one thread (or a single-item input) runs inline on the
//!   caller's thread — no spawn, no locks — so `threads = 1` *is* the
//!   serial path, not a simulation of it.
//!
//! A worker panic propagates to the caller (the scope joins every handle),
//! matching what the same loop would do serially.
//!
//! # Example
//!
//! ```
//! use par::Pool;
//!
//! let pool = Pool::new(4);
//! let squares = pool.map(&[1u64, 2, 3, 4, 5], |_, x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// [`Pool::map`] calls over the process lifetime.
static MAPS: AtomicU64 = AtomicU64::new(0);
/// Maps that actually spawned workers (vs. running inline).
static PARALLEL_MAPS: AtomicU64 = AtomicU64::new(0);
/// Items mapped over the process lifetime.
static ITEMS: AtomicU64 = AtomicU64::new(0);
/// Successful work steals over the process lifetime.
static STEALS: AtomicU64 = AtomicU64::new(0);

/// Cumulative process-wide pool utilization counters, serving rapd's
/// `debug` introspection verb. Diagnostics only — never part of any map's
/// output, so determinism across thread counts is unaffected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Total [`Pool::map`] calls.
    pub maps: u64,
    /// Maps that spawned scoped workers (the rest ran inline).
    pub parallel_maps: u64,
    /// Total items mapped.
    pub items: u64,
    /// Successful steals (a worker drained its range and took half of the
    /// largest victim's). High steal counts mean skewed item costs.
    pub steals: u64,
}

impl PoolStats {
    /// Fraction of maps that went parallel, in `[0, 1]` (`0.0` before any
    /// map has run).
    pub fn parallel_fraction(&self) -> f64 {
        if self.maps == 0 {
            0.0
        } else {
            self.parallel_maps as f64 / self.maps as f64
        }
    }
}

/// Snapshot the process-wide [`PoolStats`] counters.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        maps: MAPS.load(Ordering::Relaxed),
        parallel_maps: PARALLEL_MAPS.load(Ordering::Relaxed),
        items: ITEMS.load(Ordering::Relaxed),
        steals: STEALS.load(Ordering::Relaxed),
    }
}

/// A fixed-width scoped thread pool. Cheap to construct (it holds only the
/// thread count); threads are spawned per [`Pool::map`] call inside a
/// [`std::thread::scope`].
#[derive(Debug, Clone)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    /// A pool sized to the machine (`Pool::new(0)`).
    fn default() -> Self {
        Pool::new(0)
    }
}

impl Pool {
    /// Create a pool of `threads` workers; `0` means "use the machine's
    /// available parallelism" (falling back to 1 when that is unknown).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        Pool { threads }
    }

    /// A single-threaded pool: every map runs inline on the caller.
    pub fn serial() -> Self {
        Pool { threads: 1 }
    }

    /// The resolved worker count (never 0).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Apply `f` to every item and collect the results **in input order**.
    ///
    /// `f` receives `(index, &item)`. With one thread or at most one item
    /// the map runs inline; otherwise `min(threads, items.len())` scoped
    /// workers split the index space and steal from each other as they
    /// drain. The output is identical to the serial map for any pure `f`.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from `f` on the calling thread.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        MAPS.fetch_add(1, Ordering::Relaxed);
        ITEMS.fetch_add(n as u64, Ordering::Relaxed);
        if self.threads <= 1 || n <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        PARALLEL_MAPS.fetch_add(1, Ordering::Relaxed);
        let workers = self.threads.min(n);
        // Contiguous starting ranges, one per worker, sized within one of
        // each other; stealing rebalances whatever the split gets wrong.
        let base = n / workers;
        let extra = n % workers;
        let mut start = 0;
        let ranges: Vec<Mutex<(usize, usize)>> = (0..workers)
            .map(|w| {
                let len = base + usize::from(w < extra);
                let r = (start, start + len);
                start += len;
                Mutex::new(r)
            })
            .collect();

        let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
        let produced: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let ranges = &ranges;
                    let f = &f;
                    scope.spawn(move || {
                        let mut local: Vec<(usize, R)> = Vec::new();
                        loop {
                            let next = {
                                let mut r = lock(&ranges[w]);
                                if r.0 < r.1 {
                                    let i = r.0;
                                    r.0 += 1;
                                    Some(i)
                                } else {
                                    None
                                }
                            };
                            match next {
                                Some(i) => local.push((i, f(i, &items[i]))),
                                None => {
                                    if !steal_into(w, ranges) {
                                        break;
                                    }
                                }
                            }
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        for chunk in produced {
            for (i, r) in chunk {
                out[i] = Some(r);
            }
        }
        out.into_iter()
            .map(|r| r.expect("every index is claimed by exactly one worker"))
            .collect()
    }
}

/// Lock a range, tolerating poison: a poisoned range only means another
/// worker panicked mid-claim, and that panic is re-raised at join anyway.
fn lock(m: &Mutex<(usize, usize)>) -> std::sync::MutexGuard<'_, (usize, usize)> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Move the back half of the largest remaining victim range into worker
/// `w`'s (empty) range. Returns `false` when every other range is empty,
/// which is the worker's signal to exit.
fn steal_into(w: usize, ranges: &[Mutex<(usize, usize)>]) -> bool {
    let mut victim: Option<(usize, usize)> = None; // (index, remaining)
    for (v, m) in ranges.iter().enumerate() {
        if v == w {
            continue;
        }
        let r = lock(m);
        let remaining = r.1 - r.0;
        if remaining > 0 && victim.is_none_or(|(_, best)| remaining > best) {
            victim = Some((v, remaining));
        }
    }
    let Some((v, _)) = victim else {
        return false;
    };
    let stolen = {
        let mut r = lock(&ranges[v]);
        let remaining = r.1 - r.0;
        if remaining == 0 {
            // lost the race to the victim itself; rescan on the next loop
            return true;
        }
        let take = remaining.div_ceil(2);
        let split = r.1 - take;
        let stolen = (split, r.1);
        r.1 = split;
        stolen
    };
    *lock(&ranges[w]) = stolen;
    STEALS.fetch_add(1, Ordering::Relaxed);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn zero_threads_resolves_to_machine_width() {
        let pool = Pool::new(0);
        assert!(pool.threads() >= 1);
        assert_eq!(Pool::serial().threads(), 1);
        assert!(Pool::default().threads() >= 1);
    }

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 3, 8] {
            let pool = Pool::new(threads);
            let doubled = pool.map(&items, |_, x| x * 2);
            assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn index_argument_matches_position() {
        let items = vec!["a", "b", "c", "d", "e"];
        let pool = Pool::new(4);
        let tagged = pool.map(&items, |i, s| format!("{i}:{s}"));
        assert_eq!(tagged, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..counters.len()).collect();
        Pool::new(8).map(&items, |_, &i| {
            counters[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn uneven_item_costs_still_complete() {
        // one pathologically slow head item: stealing must keep the rest
        // flowing and the output must stay ordered
        let items: Vec<u64> = (0..64).collect();
        let pool = Pool::new(4);
        let out = pool.map(&items, |i, &x| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x + 1
        });
        assert_eq!(out, (1..=64).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = Pool::new(8);
        let empty: Vec<u32> = Vec::new();
        assert!(pool.map(&empty, |_, x| *x).is_empty());
        assert_eq!(pool.map(&[41u32], |_, x| x + 1), vec![42]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let pool = Pool::new(64);
        let out = pool.map(&[1u8, 2, 3], |_, x| *x);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            Pool::new(2).map(&[0u32, 1, 2, 3], |_, &x| {
                assert!(x != 2, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn stats_count_maps_and_items() {
        let before = pool_stats();
        let items: Vec<u64> = (0..100).collect();
        Pool::serial().map(&items, |_, &x| x);
        Pool::new(4).map(&items, |_, &x| x);
        let after = pool_stats();
        assert!(after.maps >= before.maps + 2);
        assert!(after.parallel_maps > before.parallel_maps);
        assert!(after.items >= before.items + 200);
        assert!(after.parallel_fraction() > 0.0);
    }

    #[test]
    fn borrowed_captures_work_without_arc() {
        // the whole point of scoped spawning: borrow locals in the closure
        let table = [10u64, 20, 30];
        let items = vec![0usize, 1, 2, 1, 0];
        let out = Pool::new(3).map(&items, |_, &i| table[i]);
        assert_eq!(out, vec![10, 20, 30, 20, 10]);
    }
}
