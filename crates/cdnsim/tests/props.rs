//! Property tests for the CDN simulator: generation invariants across
//! arbitrary seeds and configurations.

use cdnsim::{CdnTopology, DiurnalProfile, FailureInjector, KpiKind, TrafficConfig, TrafficModel};
use proptest::prelude::*;
use timeseries::deviation;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Topology weights are normalized per attribute and leaf shares sum
    /// to one, for every seed and size.
    #[test]
    fn topology_weights_normalized(
        seed in any::<u64>(),
        locations in 2usize..6,
        websites in 2usize..6,
    ) {
        let t = CdnTopology::builder()
            .locations(locations)
            .access_types(2)
            .oses(2)
            .websites(websites)
            .build(seed);
        for a in t.schema().attr_ids() {
            let total: f64 = t
                .schema()
                .attribute(a)
                .element_ids()
                .map(|e| t.weight(a, e))
                .sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
        let share_total: f64 = t.leaves().map(|l| t.leaf_share(&l)).sum();
        prop_assert!((share_total - 1.0).abs() < 1e-9);
    }

    /// Snapshots are non-negative, deterministic, and consistent across
    /// KPI kinds (same leaves in the same order).
    #[test]
    fn snapshots_are_sane(seed in any::<u64>(), minute in 0usize..20_000) {
        let model = TrafficModel::new(CdnTopology::small(seed), TrafficConfig::default(), seed);
        let a = model.snapshot(minute);
        let b = model.snapshot(minute);
        prop_assert_eq!(&a, &b);
        for i in 0..a.num_rows() {
            prop_assert!(a.v(i) >= 0.0);
            prop_assert!(a.f(i) >= 0.0);
        }
        for kind in KpiKind::all() {
            let k = model.snapshot_kpi(minute, kind);
            prop_assert_eq!(k.num_rows(), a.num_rows());
            for i in 0..k.num_rows() {
                prop_assert_eq!(k.row_elements(i), a.row_elements(i));
                prop_assert!(k.v(i) >= 0.0, "negative {} value", kind.name());
            }
        }
    }

    /// The diurnal factor stays positive and weekly-periodic for arbitrary
    /// amplitudes.
    #[test]
    fn diurnal_factor_positive(
        daily in 0.0f64..1.5,
        weekly in 0.0f64..0.5,
        minute in 0usize..100_000,
    ) {
        let p = DiurnalProfile::new(daily, weekly, 0.05);
        let f = p.factor(minute);
        prop_assert!(f > 0.0);
        prop_assert!((f - p.factor(minute + 7 * 24 * 60)).abs() < 1e-9);
    }

    /// Failure injection keeps every affected leaf's deviation inside the
    /// configured band and touches nothing else.
    #[test]
    fn injection_respects_band(
        seed in any::<u64>(),
        lo in 0.1f64..0.4,
        width in 0.05f64..0.4,
    ) {
        let hi = (lo + width).min(0.95);
        let model = TrafficModel::new(CdnTopology::small(seed), TrafficConfig::default(), seed);
        let mut frame = model.snapshot(777);
        let before = frame.clone();
        let rap = frame.schema().parse_combination("access=wireless").unwrap();
        let failure = FailureInjector::new(lo, hi).inject(&mut frame, &[rap], seed);
        for i in 0..frame.num_rows() {
            if failure.affected_rows.contains(&i) {
                let dev = deviation(frame.v(i), frame.f(i));
                prop_assert!(
                    (lo - 1e-9..=hi + 1e-9).contains(&dev),
                    "row {i}: dev {dev} outside [{lo}, {hi}]"
                );
            } else {
                prop_assert_eq!(frame.v(i), before.v(i));
            }
        }
    }

    /// Leaf histories are deterministic and the expected rate modulates
    /// them (active leaves produce strictly positive mean history).
    #[test]
    fn histories_are_deterministic(seed in any::<u64>()) {
        let model = TrafficModel::new(CdnTopology::small(seed), TrafficConfig::default(), seed);
        let Some(active) = (0..model.topology().num_leaves())
            .find(|&i| model.expected_rate(i, 0) > 0.0) else {
            return Ok(()); // pathological seed with no active leaf
        };
        let h1 = model.history(active, 500, 60);
        let h2 = model.history(active, 500, 60);
        prop_assert_eq!(&h1, &h2);
        prop_assert!(h1.iter().sum::<f64>() > 0.0);
        prop_assert!(h1.iter().all(|&v| v >= 0.0));
    }
}
