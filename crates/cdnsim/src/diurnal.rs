use std::f64::consts::TAU;

/// Smooth daily + weekly seasonality for CDN traffic, evaluated at
/// minute-of-week resolution (the RAPMD background data is sampled every 60
/// seconds).
///
/// The profile is a positive multiplier around 1.0 composed of:
///
/// * a daily wave (two harmonics: the evening peak and the post-lunch bump);
/// * a weekly wave (weekend lift for consumer CDN traffic);
/// * a configurable floor so night-time traffic never reaches zero.
///
/// # Example
///
/// ```
/// use cdnsim::DiurnalProfile;
///
/// let p = DiurnalProfile::default();
/// let night = p.factor(4 * 60);      // 04:00 Monday
/// let evening = p.factor(21 * 60);   // 21:00 Monday
/// assert!(evening > night);
/// assert!(night > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalProfile {
    daily_amplitude: f64,
    weekly_amplitude: f64,
    floor: f64,
}

/// Minutes in a day.
pub(crate) const MINUTES_PER_DAY: usize = 24 * 60;
/// Minutes in a week.
pub(crate) const MINUTES_PER_WEEK: usize = 7 * MINUTES_PER_DAY;

impl Default for DiurnalProfile {
    /// Evening-peaked daily wave (±55%) with a mild weekend lift (±10%).
    fn default() -> Self {
        DiurnalProfile {
            daily_amplitude: 0.55,
            weekly_amplitude: 0.10,
            floor: 0.05,
        }
    }
}

impl DiurnalProfile {
    /// Create a custom profile.
    ///
    /// # Panics
    ///
    /// Panics if amplitudes are negative or the floor is not in `(0, 1]`.
    pub fn new(daily_amplitude: f64, weekly_amplitude: f64, floor: f64) -> Self {
        assert!(daily_amplitude >= 0.0, "daily amplitude must be >= 0");
        assert!(weekly_amplitude >= 0.0, "weekly amplitude must be >= 0");
        assert!(floor > 0.0 && floor <= 1.0, "floor must be in (0, 1]");
        DiurnalProfile {
            daily_amplitude,
            weekly_amplitude,
            floor,
        }
    }

    /// The seasonal multiplier at an absolute minute timestamp (minute 0 is
    /// Monday 00:00 of the simulated calendar; timestamps wrap weekly).
    pub fn factor(&self, minute: usize) -> f64 {
        let m_day = (minute % MINUTES_PER_DAY) as f64 / MINUTES_PER_DAY as f64;
        let m_week = (minute % MINUTES_PER_WEEK) as f64 / MINUTES_PER_WEEK as f64;
        // Evening peak around 21:00 plus a smaller mid-afternoon harmonic.
        let daily = (TAU * (m_day - 0.875)).cos() * 0.8 + (2.0 * TAU * (m_day - 0.6)).cos() * 0.2;
        // Weekend lift peaking Saturday evening (~0.83 of the week).
        let weekly = (TAU * (m_week - 0.83)).cos();
        let factor = 1.0 + self.daily_amplitude * daily + self.weekly_amplitude * weekly;
        factor.max(self.floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_is_positive_everywhere() {
        let p = DiurnalProfile::default();
        for minute in (0..MINUTES_PER_WEEK).step_by(17) {
            assert!(p.factor(minute) > 0.0, "negative factor at {minute}");
        }
    }

    #[test]
    fn weekly_periodicity() {
        let p = DiurnalProfile::default();
        for minute in [0, 123, 5000, 10_000] {
            assert!((p.factor(minute) - p.factor(minute + MINUTES_PER_WEEK)).abs() < 1e-12);
        }
    }

    #[test]
    fn evening_beats_early_morning() {
        let p = DiurnalProfile::default();
        // every day of the week
        for day in 0..7 {
            let base = day * MINUTES_PER_DAY;
            assert!(p.factor(base + 21 * 60) > p.factor(base + 4 * 60));
        }
    }

    #[test]
    fn weekend_lift() {
        let p = DiurnalProfile::default();
        // Saturday 21:00 vs Tuesday 21:00
        let sat = 5 * MINUTES_PER_DAY + 21 * 60;
        let tue = MINUTES_PER_DAY + 21 * 60;
        assert!(p.factor(sat) > p.factor(tue));
    }

    #[test]
    fn flat_profile_is_constant() {
        let p = DiurnalProfile::new(0.0, 0.0, 0.05);
        assert_eq!(p.factor(0), 1.0);
        assert_eq!(p.factor(12345), 1.0);
    }

    #[test]
    #[should_panic(expected = "floor")]
    fn bad_floor_rejected() {
        DiurnalProfile::new(0.5, 0.1, 0.0);
    }

    #[test]
    fn mean_factor_is_near_one() {
        let p = DiurnalProfile::default();
        let mean: f64 =
            (0..MINUTES_PER_WEEK).map(|m| p.factor(m)).sum::<f64>() / MINUTES_PER_WEEK as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean factor {mean} drifted");
    }
}
