use mdkpi::{AttrId, ElementId, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};

/// The simulated CDN deployment: an attribute [`Schema`] plus per-entity
/// traffic weights.
///
/// Weights model the paper's observations about real CDN data:
///
/// * website popularity is Zipf-like (a few sites dominate traffic);
/// * edge locations have log-normal scale (metro vs county nodes);
/// * access-type and OS shares are fixed market-style splits.
///
/// The product of the four weights gives each leaf's share of total traffic,
/// which is what makes fine-grained leaves sparse — the paper's stated
/// reason why uniform-anomaly-magnitude assumptions fail in CDNs.
#[derive(Debug, Clone)]
pub struct CdnTopology {
    schema: Schema,
    /// One weight vector per attribute, each summing to 1.
    weights: Vec<Vec<f64>>,
}

impl CdnTopology {
    /// The paper's deployment (Table I): 33 locations, 4 access types,
    /// 4 OSes, 20 websites — 10 560 leaves.
    pub fn paper(seed: u64) -> Self {
        CdnTopologyBuilder::new()
            .locations(33)
            .access_types(4)
            .oses(4)
            .websites(20)
            .build(seed)
    }

    /// A small deployment for tests and examples: 5 locations, 2 access
    /// types, 3 OSes, 6 websites — 180 leaves.
    pub fn small(seed: u64) -> Self {
        CdnTopologyBuilder::new()
            .locations(5)
            .access_types(2)
            .oses(3)
            .websites(6)
            .build(seed)
    }

    /// Start building a custom deployment.
    pub fn builder() -> CdnTopologyBuilder {
        CdnTopologyBuilder::new()
    }

    /// The attribute schema (`location`, `access`, `os`, `website`).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The traffic-share weight of one element (weights of an attribute sum
    /// to 1).
    ///
    /// # Panics
    ///
    /// Panics if the ids are out of bounds.
    pub fn weight(&self, attr: AttrId, element: ElementId) -> f64 {
        self.weights[attr.index()][element.index()]
    }

    /// The traffic share of one leaf: the product of its element weights.
    ///
    /// # Panics
    ///
    /// Panics if `elements.len()` differs from the schema's attribute count.
    pub fn leaf_share(&self, elements: &[ElementId]) -> f64 {
        assert_eq!(
            elements.len(),
            self.schema.num_attributes(),
            "leaf arity mismatch"
        );
        elements
            .iter()
            .enumerate()
            .map(|(a, e)| self.weights[a][e.index()])
            .product()
    }

    /// Total number of leaves in the deployment.
    pub fn num_leaves(&self) -> u64 {
        self.schema.num_leaves()
    }

    /// Enumerate the element ids of leaf `index` (mixed-radix decoding in
    /// schema order; the inverse of the iteration order of
    /// [`CdnTopology::leaves`]).
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_leaves()`.
    pub fn leaf_elements(&self, index: u64) -> Vec<ElementId> {
        assert!(index < self.num_leaves(), "leaf index out of range");
        let n = self.schema.num_attributes();
        let mut out = vec![ElementId(0); n];
        let mut rem = index;
        for a in (0..n).rev() {
            let len = self.schema.attribute(AttrId(a as u16)).len() as u64;
            out[a] = ElementId((rem % len) as u32);
            rem /= len;
        }
        out
    }

    /// Iterate over every leaf's element vector in deterministic order.
    pub fn leaves(&self) -> impl Iterator<Item = Vec<ElementId>> + '_ {
        (0..self.num_leaves()).map(move |i| self.leaf_elements(i))
    }
}

/// Builder for [`CdnTopology`], created by [`CdnTopology::builder`].
#[derive(Debug, Clone)]
pub struct CdnTopologyBuilder {
    locations: usize,
    access_types: usize,
    oses: usize,
    websites: usize,
}

impl Default for CdnTopologyBuilder {
    fn default() -> Self {
        CdnTopologyBuilder {
            locations: 33,
            access_types: 4,
            oses: 4,
            websites: 20,
        }
    }
}

impl CdnTopologyBuilder {
    /// Create with the paper's default sizes.
    pub fn new() -> Self {
        CdnTopologyBuilder::default()
    }

    /// Number of edge-node locations.
    pub fn locations(mut self, n: usize) -> Self {
        self.locations = n;
        self
    }

    /// Number of access types (wireless, fixed, …).
    pub fn access_types(mut self, n: usize) -> Self {
        self.access_types = n;
        self
    }

    /// Number of device operating systems.
    pub fn oses(mut self, n: usize) -> Self {
        self.oses = n;
        self
    }

    /// Number of served websites.
    pub fn websites(mut self, n: usize) -> Self {
        self.websites = n;
        self
    }

    /// Build the topology, sampling entity weights with the given seed.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn build(self, seed: u64) -> CdnTopology {
        for (name, n) in [
            ("locations", self.locations),
            ("access_types", self.access_types),
            ("oses", self.oses),
            ("websites", self.websites),
        ] {
            assert!(n > 0, "{name} must be positive");
        }
        let schema = Schema::builder()
            .attribute("location", (1..=self.locations).map(|i| format!("L{i}")))
            .attribute("access", access_names(self.access_types))
            .attribute("os", os_names(self.oses))
            .attribute("website", (1..=self.websites).map(|i| format!("Site{i}")))
            .build()
            .expect("topology schema is valid by construction");

        let mut rng = StdRng::seed_from_u64(seed ^ 0xCD11_70B0);
        let lognormal = LogNormal::new(0.0, 0.8).expect("valid lognormal");
        // Locations: log-normal scales (metro nodes vs county nodes).
        let locations = normalize((0..self.locations).map(|_| lognormal.sample(&mut rng)));
        // Access types: skewed fixed shares with mild jitter.
        let access = normalize(
            (0..self.access_types).map(|i| 1.0 / (i + 1) as f64 * rng.gen_range(0.8..1.2)),
        );
        // OSes: same shape as access types.
        let oses =
            normalize((0..self.oses).map(|i| 1.0 / (i + 1) as f64 * rng.gen_range(0.8..1.2)));
        // Websites: Zipf-like popularity with exponent ~1.
        let websites =
            normalize((0..self.websites).map(|i| 1.0 / (i + 1) as f64 * rng.gen_range(0.9..1.1)));

        CdnTopology {
            schema,
            weights: vec![locations, access, oses, websites],
        }
    }
}

fn normalize<I: IntoIterator<Item = f64>>(values: I) -> Vec<f64> {
    let v: Vec<f64> = values.into_iter().collect();
    let total: f64 = v.iter().sum();
    assert!(total > 0.0, "weights must have positive total");
    v.into_iter().map(|x| x / total).collect()
}

fn access_names(n: usize) -> Vec<String> {
    const KNOWN: [&str; 4] = ["wireless", "fixed", "cellular", "satellite"];
    (0..n)
        .map(|i| {
            KNOWN
                .get(i)
                .map(|s| s.to_string())
                .unwrap_or_else(|| format!("access{}", i + 1))
        })
        .collect()
}

fn os_names(n: usize) -> Vec<String> {
    const KNOWN: [&str; 4] = ["android", "ios", "windows", "other"];
    (0..n)
        .map(|i| {
            KNOWN
                .get(i)
                .map(|s| s.to_string())
                .unwrap_or_else(|| format!("os{}", i + 1))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology_matches_table1() {
        let t = CdnTopology::paper(1);
        assert_eq!(t.num_leaves(), 10_560);
        let s = t.schema();
        assert_eq!(s.attribute_by_name("location").unwrap().len(), 33);
        assert_eq!(s.attribute_by_name("access").unwrap().len(), 4);
        assert_eq!(s.attribute_by_name("os").unwrap().len(), 4);
        assert_eq!(s.attribute_by_name("website").unwrap().len(), 20);
    }

    #[test]
    fn weights_are_normalized() {
        let t = CdnTopology::paper(42);
        for a in t.schema().attr_ids() {
            let total: f64 = t
                .schema()
                .attribute(a)
                .element_ids()
                .map(|e| t.weight(a, e))
                .sum();
            assert!((total - 1.0).abs() < 1e-9, "attribute {a} not normalized");
        }
    }

    #[test]
    fn leaf_shares_sum_to_one() {
        let t = CdnTopology::small(3);
        let total: f64 = t.leaves().map(|l| t.leaf_share(&l)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn website_popularity_is_skewed() {
        let t = CdnTopology::paper(5);
        let site = t.schema().attr_id("website").unwrap();
        let first = t.weight(site, ElementId(0));
        let last = t.weight(site, ElementId(19));
        assert!(
            first > 5.0 * last,
            "Zipf head {first} should dominate tail {last}"
        );
    }

    #[test]
    fn leaf_elements_decodes_mixed_radix() {
        let t = CdnTopology::small(1);
        // first leaf is all zeros, last is all maxima
        assert!(t.leaf_elements(0).iter().all(|e| e.0 == 0));
        let last = t.leaf_elements(t.num_leaves() - 1);
        for (a, e) in last.iter().enumerate() {
            let len = t.schema().attribute(AttrId(a as u16)).len() as u32;
            assert_eq!(e.0, len - 1);
        }
        // round-trip: every decoded leaf is distinct
        let distinct: std::collections::HashSet<Vec<u32>> = t
            .leaves()
            .map(|l| l.iter().map(|e| e.0).collect())
            .collect();
        assert_eq!(distinct.len() as u64, t.num_leaves());
    }

    #[test]
    fn determinism_per_seed() {
        let a = CdnTopology::paper(9);
        let b = CdnTopology::paper(9);
        let c = CdnTopology::paper(10);
        let site = a.schema().attr_id("website").unwrap();
        assert_eq!(a.weight(site, ElementId(3)), b.weight(site, ElementId(3)));
        assert_ne!(a.weight(site, ElementId(3)), c.weight(site, ElementId(3)));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dimension_rejected() {
        CdnTopology::builder().websites(0).build(1);
    }

    #[test]
    fn custom_names_extend_known_lists() {
        let t = CdnTopology::builder().access_types(5).oses(6).build(1);
        let access = t.schema().attribute_by_name("access").unwrap();
        assert_eq!(access.element_name(ElementId(4)), "access5");
        let os = t.schema().attribute_by_name("os").unwrap();
        assert_eq!(os.element_name(ElementId(5)), "os6");
    }
}
