//! Unlabelled anomalous streams with ground truth: the corpus a streaming
//! detector is judged against.
//!
//! [`AnomalyStream`] replays [`crate::TrafficModel`] snapshots minute by
//! minute and injects [`crate::FailureInjector`] failures at known steps.
//! The emitted frames carry **no anomaly labels** — exactly what a raw
//! telemetry feed looks like — while [`AnomalyStream::injections`] exposes
//! the ground-truth injection times and root anomaly patterns, so an
//! evaluation can score detection recall, false triggers, and trigger
//! latency.
//!
//! Everything is deterministic in `(config, seed)`: the same stream is
//! byte-identical across runs, which the CI detection gate relies on.

use mdkpi::{Combination, LeafFrame};

use crate::failure::FailureInjector;
use crate::topology::CdnTopology;
use crate::traffic::{TrafficConfig, TrafficModel};

/// Shape of one generated anomalous stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyStreamConfig {
    /// Total stream length in steps (minutes).
    pub steps: usize,
    /// Steps before the first injection may start — the detector's warmup
    /// headroom.
    pub warmup: usize,
    /// Number of injected failures.
    pub injections: usize,
    /// Consecutive anomalous steps per failure.
    pub duration: usize,
    /// Per-leaf deviation range of the injector (`0 < min <= max < 1`).
    pub dev_min: f64,
    /// Upper bound of the per-leaf deviation range.
    pub dev_max: f64,
    /// Minimum share of total traffic a candidate root-cause element must
    /// carry. The overall-KPI detector can only see *material* incidents —
    /// the paper's operations loop alarms on the overall KPI — so ground
    /// truth is drawn from elements above this floor.
    pub min_share: f64,
    /// Background traffic tunables.
    pub traffic: TrafficConfig,
}

impl Default for AnomalyStreamConfig {
    fn default() -> Self {
        AnomalyStreamConfig {
            steps: 360,
            warmup: 60,
            injections: 5,
            duration: 4,
            dev_min: 0.5,
            dev_max: 0.9,
            min_share: 0.1,
            traffic: TrafficConfig::default(),
        }
    }
}

/// Ground truth of one injected failure.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamInjection {
    /// First anomalous step.
    pub step: usize,
    /// Number of consecutive anomalous steps.
    pub duration: usize,
    /// The root anomaly patterns of the failure.
    pub raps: Vec<Combination>,
}

impl StreamInjection {
    /// Whether `step` falls inside this injection's anomalous window.
    pub fn covers(&self, step: usize) -> bool {
        step >= self.step && step < self.step + self.duration
    }
}

/// A deterministic unlabelled KPI stream with seeded failures.
#[derive(Debug, Clone)]
pub struct AnomalyStream {
    model: TrafficModel,
    injector: FailureInjector,
    injections: Vec<StreamInjection>,
    steps: usize,
    seed: u64,
}

impl AnomalyStream {
    /// Build the stream: topology and traffic from `seed`, injection
    /// steps spread evenly through `[warmup, steps − duration]`, each
    /// failure rooted at a material element of the first attribute
    /// (round-robin over candidates, heaviest first).
    ///
    /// # Panics
    ///
    /// Panics when the config is inconsistent: zero steps/injections/
    /// duration, a deviation range outside `0 < min ≤ max < 1`, or too
    /// little room after `warmup` to place every injection.
    pub fn new(config: AnomalyStreamConfig, seed: u64) -> Self {
        assert!(config.steps > 0, "steps must be positive");
        assert!(config.injections > 0, "injections must be positive");
        assert!(config.duration > 0, "duration must be positive");
        let span = config
            .steps
            .checked_sub(config.warmup + config.duration)
            .filter(|span| *span >= config.injections)
            .expect("not enough steps after warmup to place the injections");

        let topology = CdnTopology::small(seed);
        let model = TrafficModel::new(topology, config.traffic, seed);
        let candidates = material_elements(&model, config.min_share);

        let gap = span / config.injections;
        let injections = (0..config.injections)
            .map(|i| StreamInjection {
                step: config.warmup + i * gap + gap / 2,
                duration: config.duration,
                raps: vec![candidates[i % candidates.len()].clone()],
            })
            .collect();

        AnomalyStream {
            model,
            injector: FailureInjector::new(config.dev_min, config.dev_max),
            injections,
            steps: config.steps,
            seed,
        }
    }

    /// Stream length in steps.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The ground-truth injections, in step order.
    pub fn injections(&self) -> &[StreamInjection] {
        &self.injections
    }

    /// The underlying traffic model (schema, topology).
    pub fn model(&self) -> &TrafficModel {
        &self.model
    }

    /// Whether `step` falls inside any injection window.
    pub fn is_anomalous_step(&self, step: usize) -> bool {
        self.injections.iter().any(|inj| inj.covers(step))
    }

    /// The frame at `step`: a raw (unlabelled) snapshot, with the failure
    /// applied when the step falls inside an injection window.
    /// Deterministic in `(seed, step)`.
    ///
    /// # Panics
    ///
    /// Panics if `step >= self.steps()`.
    pub fn frame(&self, step: usize) -> LeafFrame {
        assert!(step < self.steps, "step {step} out of range");
        let mut frame = self.model.snapshot(step);
        if let Some(inj) = self.injections.iter().find(|inj| inj.covers(step)) {
            self.injector
                .inject(&mut frame, &inj.raps, self.seed ^ step as u64);
        }
        frame
    }
}

/// Elements of the first attribute carrying at least `min_share` of the
/// total traffic, heaviest first. Falls back to the single heaviest
/// element when nothing clears the floor (heavy-tailed topologies can
/// concentrate everything in one element).
fn material_elements(model: &TrafficModel, min_share: f64) -> Vec<Combination> {
    let frame = model.snapshot(0);
    let schema = model.topology().schema();
    let attr = schema.attr_ids().next().expect("schema has attributes");
    let total: f64 = frame.total_v().max(f64::MIN_POSITIVE);
    let mut shares: Vec<(f64, Combination)> = schema
        .attribute(attr)
        .element_ids()
        .map(|e| {
            let name = schema.attribute(attr).element_name(e);
            let combo = schema
                .parse_combination(&format!("{}={}", schema.attribute(attr).name(), name))
                .expect("element from the schema itself");
            let share: f64 = frame
                .rows_matching(&combo)
                .iter()
                .map(|&r| frame.v(r))
                .sum::<f64>()
                / total;
            (share, combo)
        })
        .collect();
    shares.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.1.to_string().cmp(&b.1.to_string()))
    });
    let material: Vec<Combination> = shares
        .iter()
        .filter(|(s, _)| *s >= min_share)
        .map(|(_, c)| c.clone())
        .collect();
    if material.is_empty() {
        vec![shares[0].1.clone()]
    } else {
        material
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let a = AnomalyStream::new(AnomalyStreamConfig::default(), 7);
        let b = AnomalyStream::new(AnomalyStreamConfig::default(), 7);
        assert_eq!(a.injections(), b.injections());
        for step in [0, 100, 200, 359] {
            let fa = a.frame(step);
            let fb = b.frame(step);
            assert_eq!(fa.num_rows(), fb.num_rows());
            for i in 0..fa.num_rows() {
                assert_eq!(fa.v(i), fb.v(i));
            }
        }
    }

    #[test]
    fn frames_are_unlabelled() {
        let s = AnomalyStream::new(AnomalyStreamConfig::default(), 3);
        let inj = &s.injections()[0];
        assert!(s.frame(inj.step).labels().is_none());
        assert!(s.frame(0).labels().is_none());
    }

    #[test]
    fn injections_fit_the_configured_layout() {
        let config = AnomalyStreamConfig::default();
        let s = AnomalyStream::new(config, 11);
        assert_eq!(s.injections().len(), config.injections);
        let mut prev_end = 0;
        for inj in s.injections() {
            assert!(inj.step >= config.warmup, "injection inside warmup");
            assert!(inj.step >= prev_end, "injection windows overlap");
            assert!(inj.step + inj.duration <= config.steps);
            assert!(!inj.raps.is_empty());
            prev_end = inj.step + inj.duration;
        }
    }

    #[test]
    fn injected_steps_actually_suppress_traffic() {
        let s = AnomalyStream::new(AnomalyStreamConfig::default(), 5);
        let inj = &s.injections()[0];
        let clean = s.model().snapshot(inj.step);
        let dirty = s.frame(inj.step);
        assert!(
            dirty.total_v() < 0.97 * clean.total_v(),
            "injection must be material: clean {} dirty {}",
            clean.total_v(),
            dirty.total_v()
        );
        // Steps outside every window are untouched.
        let step = inj.step + inj.duration;
        assert!(!s.is_anomalous_step(step));
        assert_eq!(s.frame(step).total_v(), s.model().snapshot(step).total_v());
    }

    #[test]
    fn ground_truth_raps_are_material() {
        let s = AnomalyStream::new(AnomalyStreamConfig::default(), 13);
        let frame = s.model().snapshot(0);
        for inj in s.injections() {
            for rap in &inj.raps {
                let share: f64 = frame
                    .rows_matching(rap)
                    .iter()
                    .map(|&r| frame.v(r))
                    .sum::<f64>()
                    / frame.total_v();
                assert!(share > 0.05, "RAP {rap} carries only {share:.3} share");
            }
        }
    }

    #[test]
    #[should_panic(expected = "not enough steps")]
    fn impossible_layouts_are_rejected() {
        AnomalyStream::new(
            AnomalyStreamConfig {
                steps: 50,
                warmup: 49,
                ..AnomalyStreamConfig::default()
            },
            1,
        );
    }
}
