//! Dirty-telemetry corruption: turn a clean simulated stream into the kind
//! of garbage a real CDN collection plane delivers.
//!
//! The paper evaluates on curated data; production telemetry is not curated.
//! Collectors emit NaN when a probe times out, double-report a leaf after a
//! retry, deliver frames out of order across relays, replay frames on
//! reconnect, and grow attribute values the control plane has never seen.
//! [`Corruptor`] applies exactly those faults to a clean `(timestamp,
//! [`LeafFrame`])` stream — deterministically, so rapd's admission-control
//! layer can be exercised end to end and its output compared byte-for-byte
//! against an uncorrupted run (`tests/dirty_stream.rs`).
//!
//! Each delivered frame is tagged with its [`Corruption`] kind, which also
//! states the expected admission outcome: [`Corruption::quarantined`] kinds
//! never reach a pipeline, [`Corruption::restored`] kinds reach it with the
//! *original* payload after repair/reordering, and the rest reach it
//! repaired but altered.

use mdkpi::LeafFrame;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The corruption applied to one delivered frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Untouched.
    Clean,
    /// One row's value replaced with NaN (wire encoding: `null`). rapd
    /// quarantines the whole frame.
    NanValue,
    /// One leaf reported three times: the original, a junk-valued copy, and
    /// a final copy carrying the original value. rapd's keep-last repair
    /// restores the original frame exactly.
    DuplicateLeaf,
    /// One row's value flipped negative. rapd clamps it to zero, so the
    /// frame is admitted but altered.
    NegativeValue,
    /// One extra row naming an attribute value absent from the schema.
    /// Within the drift allowance rapd strips it, restoring the original.
    DriftRow,
    /// Swapped with the following frame in delivery order. The watermark
    /// reorder buffer restores timestamp order.
    Reordered,
    /// A byte-identical copy of the preceding frame (same timestamp). The
    /// reorder buffer rejects it as a replay.
    Replay,
}

impl Corruption {
    /// Whether rapd quarantines the whole frame (it never reaches a
    /// pipeline).
    pub fn quarantined(self) -> bool {
        matches!(self, Corruption::NanValue | Corruption::Replay)
    }

    /// Whether the pipeline sees the frame with its **original** payload
    /// once admission repair and watermark reordering are done.
    pub fn restored(self) -> bool {
        matches!(
            self,
            Corruption::Clean
                | Corruption::DuplicateLeaf
                | Corruption::DriftRow
                | Corruption::Reordered
        )
    }
}

/// One frame as delivered on the wire: named rows plus a timestamp, tagged
/// with the corruption it carries.
#[derive(Debug, Clone, PartialEq)]
pub struct DirtyFrame {
    /// Epoch-milliseconds timestamp carried on the wire.
    pub ts: u64,
    /// `(attribute values in schema order, value)` rows, post-corruption.
    pub rows: Vec<(Vec<String>, f64)>,
    /// What was done to this frame.
    pub kind: Corruption,
}

/// Per-kind corruption rates (fractions of frames; the remainder stays
/// clean). Rates are cumulative draws, so their sum should stay below 1.
#[derive(Debug, Clone)]
pub struct CorruptionConfig {
    /// Fraction of frames that get one NaN value.
    pub nan: f64,
    /// Fraction that get one leaf duplicated (keep-last repair target).
    pub duplicate: f64,
    /// Fraction that get one value flipped negative (clamp repair target).
    pub negative: f64,
    /// Fraction that get one unknown-attribute-value row appended.
    pub drift: f64,
    /// Fraction swapped with the following frame in delivery order.
    pub reorder: f64,
    /// Fraction delivered twice (the second copy is the replay).
    pub replay: f64,
    /// Number of distinct unknown attribute values drift rows cycle
    /// through. Keep it below rapd's `--schema-drift-limit` to exercise
    /// repair, push it above to exercise drift quarantine.
    pub drift_pool: usize,
}

impl Default for CorruptionConfig {
    /// Roughly 12% of frames dirty, spread across every kind except
    /// negative values (which alter the admitted payload and so are opt-in
    /// for byte-identical comparisons).
    fn default() -> Self {
        CorruptionConfig {
            nan: 0.03,
            duplicate: 0.03,
            negative: 0.0,
            drift: 0.02,
            reorder: 0.02,
            replay: 0.02,
            drift_pool: 4,
        }
    }
}

/// Convert a [`LeafFrame`] into wire-shaped named rows via its schema.
pub fn named_rows(frame: &LeafFrame) -> Vec<(Vec<String>, f64)> {
    let schema = frame.schema();
    (0..frame.num_rows())
        .map(|i| {
            let names = frame
                .row_elements(i)
                .iter()
                .zip(schema.attr_ids())
                .map(|(e, a)| schema.attribute(a).element_name(*e).to_string())
                .collect();
            (names, frame.v(i))
        })
        .collect()
}

/// Seeded corruptor: applies [`CorruptionConfig`] faults to a clean stream.
#[derive(Debug)]
pub struct Corruptor {
    rng: StdRng,
    config: CorruptionConfig,
    drift_next: usize,
}

impl Corruptor {
    /// Create a corruptor with the given rates and seed. Identical inputs
    /// produce identical delivery sequences.
    pub fn new(config: CorruptionConfig, seed: u64) -> Corruptor {
        Corruptor {
            rng: StdRng::seed_from_u64(seed ^ 0xD127_7E1E),
            config,
            drift_next: 0,
        }
    }

    /// Corrupt a timestamp-ordered clean stream into a delivery sequence.
    ///
    /// The output may be longer than the input (replays add copies) and
    /// adjacent frames may be swapped (reordering), but every input frame
    /// appears exactly once with its own timestamp.
    pub fn corrupt_stream(&mut self, frames: &[(u64, LeafFrame)]) -> Vec<DirtyFrame> {
        let mut out: Vec<DirtyFrame> = Vec::with_capacity(frames.len());
        for (ts, frame) in frames {
            let mut rows = named_rows(frame);
            let mut kind = self.draw();
            if rows.is_empty() && !matches!(kind, Corruption::Reordered | Corruption::Replay) {
                kind = Corruption::Clean; // nothing to corrupt in-place
            }
            match kind {
                Corruption::NanValue => {
                    let i = self.rng.gen_range(0..rows.len());
                    rows[i].1 = f64::NAN;
                }
                Corruption::DuplicateLeaf => {
                    let i = self.rng.gen_range(0..rows.len());
                    let (names, v) = rows[i].clone();
                    rows.push((names.clone(), v * 2.0 + 1.0)); // junk copy
                    rows.push((names, v)); // keep-last restores this one
                }
                Corruption::NegativeValue => {
                    let i = self.rng.gen_range(0..rows.len());
                    rows[i].1 = -(rows[i].1 + 1.0);
                }
                Corruption::DriftRow => {
                    let mut names = rows[0].0.clone();
                    let ghost = self.drift_next % self.config.drift_pool.max(1);
                    self.drift_next += 1;
                    let last = names.len() - 1;
                    names[last] = format!("Ghost{ghost}");
                    rows.push((names, 1.0));
                }
                Corruption::Replay => {
                    out.push(DirtyFrame {
                        ts: *ts,
                        rows: rows.clone(),
                        kind: Corruption::Clean,
                    });
                    out.push(DirtyFrame {
                        ts: *ts,
                        rows,
                        kind: Corruption::Replay,
                    });
                    continue;
                }
                Corruption::Clean | Corruption::Reordered => {}
            }
            out.push(DirtyFrame {
                ts: *ts,
                rows,
                kind,
            });
        }
        // Delivery-order pass: swap each reordered frame with its successor.
        // Replay copies stay glued behind their originals — swapping one
        // ahead would flip which copy the reorder buffer accepts.
        let mut i = 0;
        while i + 1 < out.len() {
            if out[i].kind == Corruption::Reordered && out[i + 1].kind != Corruption::Replay {
                out.swap(i, i + 1);
                i += 2;
            } else {
                i += 1;
            }
        }
        out
    }

    fn draw(&mut self) -> Corruption {
        let x: f64 = self.rng.gen();
        let c = &self.config;
        let kinds = [
            (c.nan, Corruption::NanValue),
            (c.duplicate, Corruption::DuplicateLeaf),
            (c.negative, Corruption::NegativeValue),
            (c.drift, Corruption::DriftRow),
            (c.reorder, Corruption::Reordered),
            (c.replay, Corruption::Replay),
        ];
        let mut acc = 0.0;
        for (rate, kind) in kinds {
            acc += rate;
            if x < acc {
                return kind;
            }
        }
        Corruption::Clean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CdnTopology, TrafficConfig, TrafficModel};

    fn clean_stream(n: usize) -> Vec<(u64, LeafFrame)> {
        let topology = CdnTopology::small(11);
        let model = TrafficModel::new(topology, TrafficConfig::default(), 11);
        (0..n)
            .map(|step| ((step as u64) * 60_000, model.snapshot(600 + step)))
            .collect()
    }

    fn heavy() -> CorruptionConfig {
        CorruptionConfig {
            nan: 0.05,
            duplicate: 0.05,
            negative: 0.05,
            drift: 0.05,
            reorder: 0.05,
            replay: 0.05,
            drift_pool: 3,
        }
    }

    #[test]
    fn named_rows_match_the_schema() {
        let stream = clean_stream(1);
        let (_, frame) = &stream[0];
        let rows = named_rows(frame);
        assert_eq!(rows.len(), frame.num_rows());
        let schema = frame.schema();
        for (names, v) in &rows {
            assert_eq!(names.len(), schema.num_attributes());
            assert!(v.is_finite());
            // every name resolves back to a schema element
            for (a, name) in schema.attr_ids().zip(names.iter()) {
                assert!(
                    schema.attribute(a).element(name).is_some(),
                    "unknown element {name}"
                );
            }
        }
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let stream = clean_stream(40);
        let a = Corruptor::new(heavy(), 7).corrupt_stream(&stream);
        let b = Corruptor::new(heavy(), 7).corrupt_stream(&stream);
        let c = Corruptor::new(heavy(), 8).corrupt_stream(&stream);
        // Debug formatting treats NaN as equal to itself, unlike PartialEq.
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn every_kind_appears_and_every_input_frame_survives() {
        let stream = clean_stream(300);
        let dirty = Corruptor::new(heavy(), 3).corrupt_stream(&stream);
        for kind in [
            Corruption::NanValue,
            Corruption::DuplicateLeaf,
            Corruption::NegativeValue,
            Corruption::DriftRow,
            Corruption::Reordered,
            Corruption::Replay,
        ] {
            assert!(
                dirty.iter().any(|f| f.kind == kind),
                "missing kind {kind:?}"
            );
        }
        // every input ts appears exactly once as a non-replay frame
        let mut non_replay: Vec<u64> = dirty
            .iter()
            .filter(|f| f.kind != Corruption::Replay)
            .map(|f| f.ts)
            .collect();
        non_replay.sort_unstable();
        let expected: Vec<u64> = stream.iter().map(|(ts, _)| *ts).collect();
        assert_eq!(non_replay, expected);
        let corrupted = dirty.iter().filter(|f| f.kind != Corruption::Clean).count();
        assert!(
            corrupted as f64 >= 0.05 * dirty.len() as f64,
            "only {corrupted}/{} corrupted",
            dirty.len()
        );
    }

    #[test]
    fn replay_copies_follow_their_original_byte_for_byte() {
        let stream = clean_stream(200);
        let dirty = Corruptor::new(heavy(), 5).corrupt_stream(&stream);
        let mut replays = 0;
        for (i, f) in dirty.iter().enumerate() {
            if f.kind == Corruption::Replay {
                replays += 1;
                let prev = &dirty[i - 1];
                assert_eq!(prev.ts, f.ts);
                assert_eq!(prev.rows, f.rows);
            }
        }
        assert!(replays > 0, "heavy config must replay something");
    }

    #[test]
    fn reordered_frames_swap_with_a_neighbor() {
        let stream = clean_stream(200);
        let dirty = Corruptor::new(heavy(), 9).corrupt_stream(&stream);
        let swapped = dirty
            .iter()
            .enumerate()
            .filter(|(i, f)| f.kind == Corruption::Reordered && *i > 0 && dirty[*i - 1].ts > f.ts)
            .count();
        assert!(swapped > 0, "heavy config must deliver something late");
    }

    #[test]
    fn corrupted_payloads_carry_the_advertised_fault() {
        let stream = clean_stream(300);
        let dirty = Corruptor::new(heavy(), 13).corrupt_stream(&stream);
        for f in &dirty {
            match f.kind {
                Corruption::NanValue => {
                    assert!(f.rows.iter().any(|(_, v)| v.is_nan()));
                }
                Corruption::NegativeValue => {
                    assert!(f.rows.iter().any(|(_, v)| *v < 0.0));
                }
                Corruption::DuplicateLeaf => {
                    let names: Vec<&Vec<String>> = f.rows.iter().map(|(n, _)| n).collect();
                    let distinct: std::collections::HashSet<&Vec<String>> =
                        names.iter().copied().collect();
                    assert!(distinct.len() < names.len(), "no duplicate leaf");
                    // keep-last restores the original value: the final
                    // occurrence equals the first one
                    let dup = names
                        .iter()
                        .find(|n| names.iter().filter(|m| m == n).count() > 1)
                        .unwrap();
                    let values: Vec<f64> = f
                        .rows
                        .iter()
                        .filter(|(n, _)| n == *dup)
                        .map(|(_, v)| *v)
                        .collect();
                    assert_eq!(values.first(), values.last());
                    assert_eq!(values.len(), 3);
                }
                Corruption::DriftRow => {
                    assert!(f
                        .rows
                        .iter()
                        .any(|(n, _)| n.last().is_some_and(|s| s.starts_with("Ghost"))));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn drift_values_cycle_through_the_pool() {
        let stream = clean_stream(300);
        let dirty = Corruptor::new(heavy(), 17).corrupt_stream(&stream);
        let ghosts: std::collections::HashSet<&str> = dirty
            .iter()
            .flat_map(|f| f.rows.iter())
            .filter_map(|(n, _)| n.last())
            .filter(|s| s.starts_with("Ghost"))
            .map(String::as_str)
            .collect();
        assert!(!ghosts.is_empty());
        assert!(ghosts.len() <= 3, "pool of 3 exceeded: {ghosts:?}");
    }
}
