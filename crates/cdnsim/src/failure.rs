use mdkpi::{Combination, LeafFrame};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Suppresses the traffic of every leaf under a set of root anomaly
/// patterns, modelling a real incident (node failure, site outage, …).
///
/// For each affected leaf the actual value is pulled below its forecast so
/// that the Eq. 4 relative deviation `Dev = (f − v)/(f + ε)` lands uniformly
/// in `[dev_min, dev_max]` — per leaf independently, reproducing the paper's
/// observation that descendants of one RAP do **not** share a common anomaly
/// magnitude.
///
/// # Example
///
/// ```
/// use cdnsim::{CdnTopology, TrafficConfig, TrafficModel, FailureInjector};
///
/// let topology = CdnTopology::small(3);
/// let model = TrafficModel::new(topology, TrafficConfig::default(), 3);
/// let mut frame = model.snapshot(100);
/// let rap = frame.schema().parse_combination("location=L1").unwrap();
/// let injector = FailureInjector::new(0.3, 0.9);
/// let failure = injector.inject(&mut frame, &[rap], 99);
/// assert!(!failure.affected_rows.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureInjector {
    dev_min: f64,
    dev_max: f64,
}

/// The record of one injected failure: its ground-truth RAPs and the leaf
/// rows whose values were modified.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectedFailure {
    /// The root anomaly patterns of this failure (the ground truth a
    /// localizer must recover).
    pub raps: Vec<Combination>,
    /// Frame row indexes whose actual value was suppressed.
    pub affected_rows: Vec<usize>,
}

impl FailureInjector {
    /// Create with the per-leaf deviation range.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < dev_min <= dev_max < 1`.
    pub fn new(dev_min: f64, dev_max: f64) -> Self {
        assert!(
            dev_min > 0.0 && dev_min <= dev_max && dev_max < 1.0,
            "need 0 < dev_min <= dev_max < 1, got [{dev_min}, {dev_max}]"
        );
        FailureInjector { dev_min, dev_max }
    }

    /// Suppress every leaf covered by any of `raps`, returning the failure
    /// record. Deterministic in `seed`.
    ///
    /// Rows covered by several RAPs are modified once.
    pub fn inject(
        &self,
        frame: &mut LeafFrame,
        raps: &[Combination],
        seed: u64,
    ) -> InjectedFailure {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA11_FA11);
        let mut affected: Vec<usize> = Vec::new();
        let mut new_vs: Vec<(usize, f64)> = Vec::new();
        for i in 0..frame.num_rows() {
            let covered = raps.iter().any(|r| r.matches_leaf(frame.row_elements(i)));
            if covered {
                let dev = rng.gen_range(self.dev_min..=self.dev_max);
                let f = frame.f(i);
                new_vs.push((i, (f * (1.0 - dev)).max(0.0)));
                affected.push(i);
            }
        }
        apply_values(frame, &new_vs);
        InjectedFailure {
            raps: raps.to_vec(),
            affected_rows: affected,
        }
    }
}

/// Rebuild the frame with some actual values replaced (frames are immutable
/// row stores; this rewrites in place via the builder).
fn apply_values(frame: &mut LeafFrame, updates: &[(usize, f64)]) {
    if updates.is_empty() {
        return;
    }
    let mut new_v: Vec<f64> = (0..frame.num_rows()).map(|i| frame.v(i)).collect();
    for &(i, v) in updates {
        new_v[i] = v;
    }
    let mut builder = LeafFrame::builder(frame.schema());
    for (i, v) in new_v.iter().enumerate() {
        builder.push(frame.row_elements(i), *v, frame.f(i));
    }
    let labels = frame.labels().map(<[bool]>::to_vec);
    let mut rebuilt = builder.build();
    if let Some(l) = labels {
        rebuilt.set_labels(l).expect("same row count");
    }
    *frame = rebuilt;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CdnTopology, TrafficConfig, TrafficModel};
    use timeseries::deviation;

    fn frame() -> LeafFrame {
        let model = TrafficModel::new(CdnTopology::small(17), TrafficConfig::default(), 17);
        model.snapshot(400)
    }

    #[test]
    fn injection_suppresses_only_covered_leaves() {
        let mut f = frame();
        let before = f.clone();
        let rap = f.schema().parse_combination("website=Site2").unwrap();
        let injector = FailureInjector::new(0.2, 0.8);
        let failure = injector.inject(&mut f, &[std::clone::Clone::clone(&rap)], 1);
        assert!(!failure.affected_rows.is_empty());
        for i in 0..f.num_rows() {
            if failure.affected_rows.contains(&i) {
                assert!(rap.matches_leaf(f.row_elements(i)));
                let dev = deviation(f.v(i), f.f(i));
                assert!(
                    (0.2..=0.8 + 1e-9).contains(&dev),
                    "row {i}: dev {dev} out of range"
                );
            } else {
                assert_eq!(f.v(i), before.v(i), "untouched row {i} changed");
            }
        }
    }

    #[test]
    fn devs_vary_across_leaves() {
        let mut f = frame();
        let rap = f.schema().parse_combination("location=L1").unwrap();
        let failure = FailureInjector::new(0.1, 0.9).inject(&mut f, &[rap], 2);
        let devs: Vec<f64> = failure
            .affected_rows
            .iter()
            .map(|&i| deviation(f.v(i), f.f(i)))
            .collect();
        assert!(devs.len() > 3);
        let min = devs.iter().copied().fold(f64::MAX, f64::min);
        let max = devs.iter().copied().fold(f64::MIN, f64::max);
        assert!(
            max - min > 0.1,
            "deviations should vary per leaf (min {min}, max {max})"
        );
    }

    #[test]
    fn overlapping_raps_modify_rows_once() {
        let mut f = frame();
        let a = f.schema().parse_combination("location=L1").unwrap();
        let b = f
            .schema()
            .parse_combination("location=L1&access=wireless")
            .unwrap();
        let failure = FailureInjector::new(0.3, 0.3001).inject(&mut f, &[a, b], 3);
        // no duplicate rows in the record
        let distinct: std::collections::HashSet<_> =
            failure.affected_rows.iter().copied().collect();
        assert_eq!(distinct.len(), failure.affected_rows.len());
        // each affected row's dev is within the (tight) range: one draw only
        for &i in &failure.affected_rows {
            let dev = deviation(f.v(i), f.f(i));
            assert!((0.3..=0.3002).contains(&dev), "row {i} dev {dev}");
        }
    }

    #[test]
    fn injection_is_deterministic_in_seed() {
        let (mut f1, mut f2) = (frame(), frame());
        let rap = f1.schema().parse_combination("os=ios").unwrap();
        let inj = FailureInjector::new(0.1, 0.9);
        inj.inject(&mut f1, std::slice::from_ref(&rap), 7);
        inj.inject(&mut f2, std::slice::from_ref(&rap), 7);
        assert_eq!(f1, f2);
        let mut f3 = frame();
        inj.inject(&mut f3, &[rap], 8);
        assert_ne!(f1, f3);
    }

    #[test]
    #[should_panic(expected = "dev_min")]
    fn bad_range_rejected() {
        FailureInjector::new(0.9, 0.1);
    }

    #[test]
    fn empty_rap_set_is_noop() {
        let mut f = frame();
        let before = f.clone();
        let failure = FailureInjector::new(0.1, 0.9).inject(&mut f, &[], 1);
        assert!(failure.affected_rows.is_empty());
        assert_eq!(f, before);
    }
}
