//! # cdnsim — CDN traffic simulator substrate
//!
//! The RAPMiner paper evaluates on RAPMD, a semi-synthetic dataset built by
//! injecting failures into **proprietary** background KPIs collected from an
//! ISP-operated CDN in China (35 days, 60-second granularity, the Table I
//! schema: 33 locations × 4 access types × 4 OSes × 20 websites). That data
//! is not public, so this crate synthesizes a statistically similar
//! background:
//!
//! * [`CdnTopology`] — the attribute schema plus per-entity popularity
//!   weights (Zipf-like websites, log-normal location scales);
//! * [`DiurnalProfile`] — smooth daily/weekly seasonality;
//! * [`TrafficModel`] — per-leaf expected rates with heavy-tailed jitter and
//!   sparsity (many fine-grained leaves carry little or no traffic, which is
//!   precisely the paper's argument for why Squeeze-style "same anomaly
//!   magnitude" assumptions fail on real CDNs);
//! * [`KpiKind`] — fundamental KPIs (`OutFlow`, `Requests`, `CacheHits`) and
//!   the derived cache-hit-ratio transformation;
//! * [`FailureInjector`] — suppress the traffic of every leaf under a set of
//!   root anomaly patterns;
//! * [`Corruptor`] — dirty-telemetry faults (NaN values, duplicate leaves,
//!   out-of-order delivery, replays, schema drift) for testing ingestion
//!   admission control.
//!
//! All generation is seeded and deterministic.
//!
//! # Example
//!
//! ```
//! use cdnsim::{CdnTopology, TrafficConfig, TrafficModel};
//!
//! let topology = CdnTopology::small(7);
//! let model = TrafficModel::new(topology, TrafficConfig::default(), 7);
//! let frame = model.snapshot(600); // minute 600 of the simulated week
//! assert!(frame.num_rows() > 0);
//! assert!(frame.total_v() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corruption;
mod diurnal;
mod failure;
mod kpis;
mod stream;
mod topology;
mod traffic;

pub use corruption::{named_rows, Corruption, CorruptionConfig, Corruptor, DirtyFrame};
pub use diurnal::DiurnalProfile;
pub use failure::{FailureInjector, InjectedFailure};
pub use kpis::{derive_hit_ratio, derive_mean_delay, KpiKind};
pub use stream::{AnomalyStream, AnomalyStreamConfig, StreamInjection};
pub use topology::{CdnTopology, CdnTopologyBuilder};
pub use traffic::{TrafficConfig, TrafficModel};
