use mdkpi::{ElementId, LeafFrame};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::traffic::TrafficModel;

/// The CDN KPIs the simulator can expose (paper §II-A: "traffic volume,
/// cache hit ratio and server response delay, etc.").
///
/// `Requests`, `OutFlow` and `CacheHits` are **fundamental** (additive)
/// KPIs; the cache-hit ratio is **derived** from two of them via
/// [`derive_hit_ratio`] (the paper's `K^D = g(K^F_1, …, K^F_m)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KpiKind {
    /// HTTP requests served per minute.
    Requests,
    /// Bytes served per minute (`requests × per-website object size`).
    OutFlow,
    /// Requests served from cache (`requests × per-location hit
    /// probability`).
    CacheHits,
    /// Summed server response time in milliseconds
    /// (`requests × per-(location, access) base latency`); divide by
    /// `Requests` for the derived mean response delay the paper's §II-A
    /// lists among monitored KPIs.
    TotalDelayMs,
}

impl KpiKind {
    /// Stable lowercase name for file naming and reports.
    pub fn name(self) -> &'static str {
        match self {
            KpiKind::Requests => "requests",
            KpiKind::OutFlow => "out_flow",
            KpiKind::CacheHits => "cache_hits",
            KpiKind::TotalDelayMs => "total_delay_ms",
        }
    }

    /// All fundamental KPI kinds the simulator exposes.
    pub fn all() -> [KpiKind; 4] {
        [
            KpiKind::Requests,
            KpiKind::OutFlow,
            KpiKind::CacheHits,
            KpiKind::TotalDelayMs,
        ]
    }
}

impl TrafficModel {
    /// Generate the leaf table of one fundamental KPI at `minute`.
    ///
    /// `Requests` is the raw snapshot; the other KPIs scale each leaf by a
    /// deterministic per-entity factor (object size per website, hit
    /// probability per location), so all fundamental KPIs stay mutually
    /// consistent at the leaf level.
    pub fn snapshot_kpi(&self, minute: usize, kind: KpiKind) -> LeafFrame {
        let requests = self.snapshot(minute);
        match kind {
            KpiKind::Requests => requests,
            KpiKind::OutFlow => scale_frame(&requests, |elements| {
                object_size_kb(self.kpi_seed(), elements) // KB per request
            }),
            KpiKind::CacheHits => scale_frame(&requests, |elements| {
                hit_probability(self.kpi_seed(), elements)
            }),
            KpiKind::TotalDelayMs => scale_frame(&requests, |elements| {
                base_latency_ms(self.kpi_seed(), elements)
            }),
        }
    }

    fn kpi_seed(&self) -> u64 {
        // derived from topology size so it is stable per model
        0x0C0F_FEE0 ^ (self.topology().num_leaves())
    }
}

/// Per-website mean object size in KB (deterministic in `(seed, website)`).
fn object_size_kb(seed: u64, elements: &[ElementId]) -> f64 {
    let website = elements[3].0 as u64;
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(website * 7919));
    rng.gen_range(20.0..2000.0)
}

/// Per-location cache-hit probability (deterministic in `(seed, location)`).
fn hit_probability(seed: u64, elements: &[ElementId]) -> f64 {
    let location = elements[0].0 as u64;
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(location * 104729));
    rng.gen_range(0.55..0.98)
}

/// Per-(location, access-type) mean response latency in milliseconds
/// (deterministic in `(seed, location, access)`): wireless paths and remote
/// edge nodes are slower.
fn base_latency_ms(seed: u64, elements: &[ElementId]) -> f64 {
    let location = elements[0].0 as u64;
    let access = elements[1].0 as u64;
    let mut rng = StdRng::seed_from_u64(
        seed.wrapping_add(location * 6151)
            .wrapping_add(access * 3079),
    );
    rng.gen_range(8.0..120.0)
}

/// Derive the mean response delay from the `TotalDelayMs` and `Requests`
/// leaf tables (another Fig. 4 derived KPI, `g = total_delay / requests`).
///
/// # Panics
///
/// Panics if the two frames do not align row-for-row (same schema, same
/// leaves in the same order).
pub fn derive_mean_delay(total_delay: &LeafFrame, requests: &LeafFrame) -> LeafFrame {
    assert_eq!(
        total_delay.num_rows(),
        requests.num_rows(),
        "frames must align row-for-row"
    );
    assert_eq!(total_delay.schema(), requests.schema(), "schema mismatch");
    let mut builder = LeafFrame::builder(total_delay.schema());
    for i in 0..total_delay.num_rows() {
        assert_eq!(
            total_delay.row_elements(i),
            requests.row_elements(i),
            "row {i} leaves differ"
        );
        let guard = |num: f64, den: f64| if den.abs() < 1e-12 { 0.0 } else { num / den };
        builder.push(
            total_delay.row_elements(i),
            guard(total_delay.v(i), requests.v(i)),
            guard(total_delay.f(i), requests.f(i)),
        );
    }
    builder.build()
}

fn scale_frame(frame: &LeafFrame, factor: impl Fn(&[ElementId]) -> f64) -> LeafFrame {
    let mut builder = LeafFrame::builder(frame.schema());
    for i in 0..frame.num_rows() {
        let elements = frame.row_elements(i);
        let k = factor(elements);
        builder.push(elements, frame.v(i) * k, frame.f(i) * k);
    }
    builder.build()
}

/// Derive the cache-hit-ratio KPI from the `CacheHits` and `Requests` leaf
/// tables (the paper's Fig. 4 derived-KPI transformation, `g = hits /
/// requests` per leaf).
///
/// # Panics
///
/// Panics if the two frames do not align row-for-row (same schema, same
/// leaves in the same order) — they must come from the same snapshot minute.
pub fn derive_hit_ratio(hits: &LeafFrame, requests: &LeafFrame) -> LeafFrame {
    assert_eq!(
        hits.num_rows(),
        requests.num_rows(),
        "frames must align row-for-row"
    );
    assert_eq!(hits.schema(), requests.schema(), "schema mismatch");
    let mut builder = LeafFrame::builder(hits.schema());
    for i in 0..hits.num_rows() {
        assert_eq!(
            hits.row_elements(i),
            requests.row_elements(i),
            "row {i} leaves differ"
        );
        let guard = |num: f64, den: f64| if den.abs() < 1e-12 { 0.0 } else { num / den };
        builder.push(
            hits.row_elements(i),
            guard(hits.v(i), requests.v(i)),
            guard(hits.f(i), requests.f(i)),
        );
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CdnTopology, TrafficConfig};

    fn model() -> TrafficModel {
        TrafficModel::new(CdnTopology::small(5), TrafficConfig::default(), 5)
    }

    #[test]
    fn kpis_share_leaf_structure() {
        let m = model();
        let req = m.snapshot_kpi(200, KpiKind::Requests);
        let flow = m.snapshot_kpi(200, KpiKind::OutFlow);
        let hits = m.snapshot_kpi(200, KpiKind::CacheHits);
        assert_eq!(req.num_rows(), flow.num_rows());
        assert_eq!(req.num_rows(), hits.num_rows());
        for i in 0..req.num_rows() {
            assert_eq!(req.row_elements(i), flow.row_elements(i));
        }
    }

    #[test]
    fn cache_hits_never_exceed_requests() {
        let m = model();
        let req = m.snapshot_kpi(200, KpiKind::Requests);
        let hits = m.snapshot_kpi(200, KpiKind::CacheHits);
        for i in 0..req.num_rows() {
            assert!(
                hits.v(i) <= req.v(i) + 1e-9,
                "row {i}: hits exceed requests"
            );
        }
    }

    #[test]
    fn hit_ratio_is_in_unit_interval() {
        let m = model();
        let req = m.snapshot_kpi(200, KpiKind::Requests);
        let hits = m.snapshot_kpi(200, KpiKind::CacheHits);
        let ratio = derive_hit_ratio(&hits, &req);
        for i in 0..ratio.num_rows() {
            assert!(
                (0.0..=1.0 + 1e-9).contains(&ratio.v(i)),
                "bad ratio {}",
                ratio.v(i)
            );
            assert!((0.0..=1.0 + 1e-9).contains(&ratio.f(i)));
        }
    }

    #[test]
    fn out_flow_scales_by_website() {
        let m = model();
        let req = m.snapshot_kpi(200, KpiKind::Requests);
        let flow = m.snapshot_kpi(200, KpiKind::OutFlow);
        // same website rows must have the same scale factor
        let website_attr = m.topology().schema().attr_id("website").unwrap();
        let mut per_site: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        for i in 0..req.num_rows() {
            if req.v(i) < 1e-9 {
                continue;
            }
            let site = req.row_elements(i)[website_attr.index()].0;
            let k = flow.v(i) / req.v(i);
            let entry = per_site.entry(site).or_insert(k);
            assert!(
                (*entry - k).abs() < 1e-6,
                "inconsistent scale for site {site}"
            );
        }
        assert!(per_site.len() > 1);
    }

    #[test]
    fn kpi_names_are_stable() {
        assert_eq!(KpiKind::Requests.name(), "requests");
        assert_eq!(KpiKind::OutFlow.name(), "out_flow");
        assert_eq!(KpiKind::CacheHits.name(), "cache_hits");
        assert_eq!(KpiKind::TotalDelayMs.name(), "total_delay_ms");
        assert_eq!(KpiKind::all().len(), 4);
    }

    #[test]
    fn mean_delay_is_plausible_and_constant_per_location_access() {
        let m = model();
        let req = m.snapshot_kpi(200, KpiKind::Requests);
        let delay = m.snapshot_kpi(200, KpiKind::TotalDelayMs);
        let mean = derive_mean_delay(&delay, &req);
        for i in 0..mean.num_rows() {
            if req.v(i) > 1e-9 {
                assert!(
                    (8.0..120.0).contains(&mean.v(i)),
                    "row {i}: mean delay {} out of configured band",
                    mean.v(i)
                );
            }
        }
        // rows sharing (location, access) share the same mean latency
        let mut per_pair: std::collections::HashMap<(u32, u32), f64> =
            std::collections::HashMap::new();
        for i in 0..mean.num_rows() {
            if req.v(i) < 1e-9 {
                continue;
            }
            let e = mean.row_elements(i);
            let key = (e[0].0, e[1].0);
            let entry = per_pair.entry(key).or_insert(mean.v(i));
            assert!(
                (*entry - mean.v(i)).abs() < 1e-6,
                "pair {key:?} inconsistent"
            );
        }
        assert!(per_pair.len() > 1);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn misaligned_frames_rejected() {
        let m = model();
        let req = m.snapshot_kpi(200, KpiKind::Requests);
        let schema = req.schema().clone();
        let empty = mdkpi::LeafFrame::builder(&schema).build();
        derive_hit_ratio(&empty, &req);
    }
}
