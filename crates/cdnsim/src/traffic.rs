use mdkpi::{ElementId, LeafFrame};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal, Normal};

use crate::diurnal::DiurnalProfile;
use crate::topology::CdnTopology;

/// Tunables of the background traffic generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// Total expected requests per minute across the whole CDN.
    pub total_volume: f64,
    /// Sigma of the per-leaf log-normal jitter applied to the topology's
    /// share product (makes leaf magnitudes heavy-tailed).
    pub jitter_sigma: f64,
    /// Fraction of leaves that carry any traffic at all; the rest never
    /// appear in snapshots (real fine-grained CDN KPIs are sparse).
    pub active_fraction: f64,
    /// Coefficient of variation of the actual value around its expectation.
    pub noise_cv: f64,
    /// Coefficient of variation of the forecaster's error (how far `f`
    /// strays from the true expectation on normal leaves).
    pub forecast_error_cv: f64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            total_volume: 1_000_000.0,
            jitter_sigma: 1.0,
            active_fraction: 0.7,
            noise_cv: 0.05,
            forecast_error_cv: 0.02,
        }
    }
}

/// Per-leaf background traffic model over a [`CdnTopology`].
///
/// Construction fixes each leaf's *base rate* (share × jitter × volume) and
/// whether it is active; [`TrafficModel::snapshot`] then produces the leaf
/// table at any minute with seasonal modulation, sampling noise, and a
/// forecast column — everything the localization pipeline consumes.
///
/// Snapshots are deterministic in `(model seed, minute)`.
#[derive(Debug, Clone)]
pub struct TrafficModel {
    topology: CdnTopology,
    profile: DiurnalProfile,
    config: TrafficConfig,
    /// Base (non-seasonal) expected rate per leaf index; 0.0 = inactive.
    base_rates: Vec<f64>,
    seed: u64,
}

impl TrafficModel {
    /// Build the model, sampling per-leaf jitter and the active mask with
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if config fields are out of range (non-positive volume,
    /// `active_fraction` outside `(0, 1]`, negative CVs).
    pub fn new(topology: CdnTopology, config: TrafficConfig, seed: u64) -> Self {
        assert!(config.total_volume > 0.0, "total_volume must be positive");
        assert!(
            config.active_fraction > 0.0 && config.active_fraction <= 1.0,
            "active_fraction must be in (0, 1]"
        );
        assert!(config.jitter_sigma >= 0.0, "jitter_sigma must be >= 0");
        assert!(config.noise_cv >= 0.0, "noise_cv must be >= 0");
        assert!(
            config.forecast_error_cv >= 0.0,
            "forecast_error_cv must be >= 0"
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7A_FF1C);
        let jitter = LogNormal::new(0.0, config.jitter_sigma.max(1e-12)).expect("valid lognormal");
        let n = topology.num_leaves() as usize;
        let mut base_rates = Vec::with_capacity(n);
        for leaf in topology.leaves() {
            let active = rng.gen_bool(config.active_fraction);
            if active {
                let share = topology.leaf_share(&leaf);
                base_rates.push(share * jitter.sample(&mut rng) * config.total_volume);
            } else {
                base_rates.push(0.0);
            }
        }
        TrafficModel {
            topology,
            profile: DiurnalProfile::default(),
            config,
            base_rates,
            seed,
        }
    }

    /// Replace the seasonality profile (builder-style).
    pub fn with_profile(mut self, profile: DiurnalProfile) -> Self {
        self.profile = profile;
        self
    }

    /// The underlying topology.
    pub fn topology(&self) -> &CdnTopology {
        &self.topology
    }

    /// The generation config.
    pub fn config(&self) -> &TrafficConfig {
        &self.config
    }

    /// Number of active leaves (rows per snapshot).
    pub fn num_active_leaves(&self) -> usize {
        self.base_rates.iter().filter(|&&r| r > 0.0).count()
    }

    /// The true (noise-free) expected rate of leaf `index` at `minute`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn expected_rate(&self, index: u64, minute: usize) -> f64 {
        self.base_rates[index as usize] * self.profile.factor(minute)
    }

    /// Generate the leaf table at one minute: actual value `v` (expectation
    /// plus sampling noise) and forecast `f` (expectation plus forecast
    /// error) for every active leaf. No anomaly labels are attached.
    pub fn snapshot(&self, minute: usize) -> LeafFrame {
        let mut rng = self.snapshot_rng(minute);
        let mut builder = LeafFrame::builder(self.topology.schema());
        for (i, &base) in self.base_rates.iter().enumerate() {
            if base <= 0.0 {
                continue;
            }
            let expect = base * self.profile.factor(minute);
            let (v, f) = self.sample_pair(expect, &mut rng);
            let elements: Vec<ElementId> = self.topology.leaf_elements(i as u64);
            builder.push(&elements, v, f);
        }
        builder.build()
    }

    /// Generate per-leaf history: `points` consecutive minutes of actual
    /// values for leaf `index`, ending just before `minute` (for fitting
    /// forecasters/detectors).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn history(&self, index: u64, minute: usize, points: usize) -> Vec<f64> {
        let start = minute.saturating_sub(points);
        (start..minute)
            .map(|m| {
                let mut rng = self.point_rng(index, m);
                let expect = self.expected_rate(index, m);
                sample_noisy(expect, self.config.noise_cv, &mut rng)
            })
            .collect()
    }

    fn sample_pair(&self, expect: f64, rng: &mut StdRng) -> (f64, f64) {
        let v = sample_noisy(expect, self.config.noise_cv, rng);
        let f = sample_noisy(expect, self.config.forecast_error_cv, rng);
        (v, f)
    }

    fn snapshot_rng(&self, minute: usize) -> StdRng {
        StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(minute as u64),
        )
    }

    fn point_rng(&self, index: u64, minute: usize) -> StdRng {
        StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(minute as u64)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9)
                .wrapping_add(index),
        )
    }
}

fn sample_noisy(expect: f64, cv: f64, rng: &mut StdRng) -> f64 {
    if expect <= 0.0 {
        return 0.0;
    }
    if cv <= 0.0 {
        return expect;
    }
    let normal = Normal::new(expect, cv * expect).expect("valid normal");
    normal.sample(rng).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TrafficModel {
        TrafficModel::new(CdnTopology::small(11), TrafficConfig::default(), 11)
    }

    #[test]
    fn snapshot_contains_active_leaves_only() {
        let m = model();
        let frame = m.snapshot(100);
        assert_eq!(frame.num_rows(), m.num_active_leaves());
        assert!(frame.num_rows() < m.topology().num_leaves() as usize);
        assert!(frame.num_rows() > 0);
    }

    #[test]
    fn snapshots_are_deterministic() {
        let a = model().snapshot(300);
        let b = model().snapshot(300);
        assert_eq!(a.num_rows(), b.num_rows());
        for i in 0..a.num_rows() {
            assert_eq!(a.v(i), b.v(i));
            assert_eq!(a.f(i), b.f(i));
        }
        let c = model().snapshot(301);
        assert_ne!(a.v(0), c.v(0));
    }

    #[test]
    fn forecast_tracks_actual_on_normal_traffic() {
        let m = model();
        let frame = m.snapshot(500);
        // with small CVs, |v - f| / f should be small for most leaves
        let mut close = 0usize;
        for i in 0..frame.num_rows() {
            if (frame.v(i) - frame.f(i)).abs() / frame.f(i).max(1e-9) < 0.3 {
                close += 1;
            }
        }
        assert!(
            close as f64 > 0.9 * frame.num_rows() as f64,
            "only {close}/{} leaves have close forecasts",
            frame.num_rows()
        );
    }

    #[test]
    fn seasonality_modulates_volume() {
        let m = TrafficModel::new(
            CdnTopology::small(2),
            TrafficConfig {
                noise_cv: 0.0,
                forecast_error_cv: 0.0,
                ..TrafficConfig::default()
            },
            2,
        );
        let night = m.snapshot(4 * 60).total_v(); // 04:00
        let evening = m.snapshot(21 * 60).total_v(); // 21:00
        assert!(evening > night);
    }

    #[test]
    fn history_is_deterministic_and_positive() {
        let m = model();
        // pick an active leaf
        let idx = (0..m.topology().num_leaves())
            .find(|&i| m.expected_rate(i, 0) > 0.0)
            .expect("some active leaf");
        let h1 = m.history(idx, 1000, 50);
        let h2 = m.history(idx, 1000, 50);
        assert_eq!(h1, h2);
        assert_eq!(h1.len(), 50);
        assert!(h1.iter().all(|&v| v >= 0.0));
        assert!(h1.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn heavy_tail_across_leaves() {
        let m = model();
        let frame = m.snapshot(100);
        let mut vs: Vec<f64> = (0..frame.num_rows()).map(|i| frame.v(i)).collect();
        vs.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        let top_decile: f64 = vs[..vs.len() / 10].iter().sum();
        let total: f64 = vs.iter().sum();
        assert!(
            top_decile > 0.4 * total,
            "top 10% of leaves only carry {:.1}% of traffic",
            100.0 * top_decile / total
        );
    }

    #[test]
    #[should_panic(expected = "active_fraction")]
    fn bad_config_rejected() {
        TrafficModel::new(
            CdnTopology::small(1),
            TrafficConfig {
                active_fraction: 0.0,
                ..TrafficConfig::default()
            },
            1,
        );
    }
}
