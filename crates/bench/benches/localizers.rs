//! Criterion benchmarks backing the paper's running-time comparisons
//! (Fig. 9a/9b) and the deletion ablation (Table VI).
//!
//! These time single-case localization on fixed datasets, so the relative
//! ordering (Adtributor fastest on 1-D groups, iDice slowest, RAPMiner
//! mid-pack, deletion beating no-deletion) is directly comparable with the
//! paper even though absolute numbers depend on the host.

use baselines::{all_localizers, Localizer, RapMinerLocalizer};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rapminer::Config;
use rapminer_bench::{rapmd_small, squeeze_dataset};

/// Fig. 9(a) analogue: per-method localization time on one case from an
/// easy group (1,1) and one from the hardest group (3,3).
fn squeeze_groups(c: &mut Criterion) {
    let dataset = squeeze_dataset(1);
    let mut group = c.benchmark_group("squeeze_groups");
    group.sample_size(10);
    for tag in ["(1,1)", "(3,3)"] {
        let case = dataset.group(tag).next().expect("group exists").clone();
        for method in all_localizers() {
            group.bench_with_input(BenchmarkId::new(method.name(), tag), &case, |b, case| {
                b.iter(|| {
                    method
                        .localize(&case.frame, case.truth.len())
                        .map(|r| r.len())
                        .unwrap_or(0)
                })
            });
        }
    }
    group.finish();
    dump_span_summary("squeeze_groups");
}

/// Print where the benchmarked iterations spent their time (per span
/// name), then reset the ring so the next group profiles itself alone.
fn dump_span_summary(group: &str) {
    eprintln!(
        "-- span profile after {group} --\n{}",
        rapminer_bench::span_summary(obs::DEFAULT_RING_CAPACITY)
    );
    obs::clear_spans();
}

/// Fig. 9(b) analogue: per-method localization time on one RAPMD case.
fn rapmd_methods(c: &mut Criterion) {
    let dataset = rapmd_small(4);
    let case = dataset.cases[0].clone();
    let mut group = c.benchmark_group("rapmd_methods");
    group.sample_size(10);
    for method in all_localizers() {
        group.bench_function(method.name(), |b| {
            b.iter(|| {
                method
                    .localize(&case.frame, 5)
                    .map(|r| r.len())
                    .unwrap_or(0)
            })
        });
    }
    group.finish();
    dump_span_summary("rapmd_methods");
}

/// Table VI analogue: RAPMiner with vs without redundant attribute
/// deletion on one RAPMD case.
fn ablation_deletion(c: &mut Criterion) {
    let dataset = rapmd_small(4);
    let case = dataset.cases[0].clone();
    let with = RapMinerLocalizer::with_config(Config::new().with_redundant_deletion(true));
    let without = RapMinerLocalizer::with_config(Config::new().with_redundant_deletion(false));
    let mut group = c.benchmark_group("ablation_deletion");
    group.sample_size(10);
    group.bench_function("with_deletion", |b| {
        b.iter(|| with.localize(&case.frame, 3).map(|r| r.len()).unwrap_or(0))
    });
    group.bench_function("without_deletion", |b| {
        b.iter(|| {
            without
                .localize(&case.frame, 3)
                .map(|r| r.len())
                .unwrap_or(0)
        })
    });
    group.finish();
    dump_span_summary("ablation_deletion");
}

criterion_group!(benches, squeeze_groups, rapmd_methods, ablation_deletion);
criterion_main!(benches);
