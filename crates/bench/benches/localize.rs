//! Criterion benchmark for the parallel localization core: RAPMiner
//! end-to-end on the Fig. 10 thread-scaling fixture, serial vs. the
//! work-stealing pool at several thread counts.
//!
//! The machine-readable record and the regression/speedup gates live in
//! the `bench_localize` binary (which `scripts/ci.sh` runs); this bench
//! exists for interactive `cargo bench` exploration of the same workload.

use baselines::{Localizer, RapMinerLocalizer};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rapminer::Config;
use rapminer_bench::fig10_frame;

const K: usize = 5;

/// Serial vs. parallel localization on the scale-4 fixture (84 480
/// leaves, full 15-cuboid sweep). Thread count 0 is the machine width.
fn localize_scaling(c: &mut Criterion) {
    let frame = fig10_frame(4);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut group = c.benchmark_group("localize_scaling");
    group.sample_size(5);
    for threads in [1usize, 2, 4, 8, 0] {
        if threads > cores.max(2) && threads != 0 {
            continue; // oversubscribing a small host just measures noise
        }
        let localizer = RapMinerLocalizer::with_config(Config::new().with_threads(threads));
        let label = if threads == 0 {
            format!("machine({cores})")
        } else {
            threads.to_string()
        };
        group.bench_with_input(BenchmarkId::new("threads", label), &frame, |b, frame| {
            b.iter(|| localizer.localize(frame, K).map(|r| r.len()).unwrap_or(0))
        });
    }
    group.finish();
}

criterion_group!(benches, localize_scaling);
criterion_main!(benches);
