//! Component-level benchmarks for the substrates RAPMiner's hot path sits
//! on, plus a scaling study of the paper's §V-F claim: "the efficiency of
//! RAPMiner is not related to the total number of attributes, but the
//! number of attributes contained in the RAPs".

use baselines::Localizer;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdkpi::{AttrId, Combination, ElementId, LeafFrame, LeafIndex, Schema};
use rapminer::{classification_power, RapMiner};

/// A full-grid labelled frame over `n_attrs` attributes of `elems` elements
/// each, with the RAP `(e0_0, *, …)` planted.
fn grid_frame(n_attrs: usize, elems: u32) -> LeafFrame {
    let mut b = Schema::builder();
    for i in 0..n_attrs {
        b = b.attribute(format!("attr{i}"), (0..elems).map(|j| format!("e{i}_{j}")));
    }
    let schema = b.build().expect("valid schema");
    let mut builder = LeafFrame::builder(&schema);
    let mut counters = vec![0u32; n_attrs];
    loop {
        let elements: Vec<ElementId> = counters.iter().map(|&c| ElementId(c)).collect();
        let anomalous = counters[0] == 0;
        builder.push_labelled(&elements, if anomalous { 1.0 } else { 9.0 }, 9.0, anomalous);
        let mut i = n_attrs;
        let done = loop {
            if i == 0 {
                break true;
            }
            i -= 1;
            counters[i] += 1;
            if counters[i] < elems {
                break false;
            }
            counters[i] = 0;
        };
        if done {
            break;
        }
    }
    builder.build()
}

/// Index construction and Criteria-2 support counting on a 4096-leaf frame.
fn index_operations(c: &mut Criterion) {
    let frame = grid_frame(4, 8); // 4096 leaves
    let mut group = c.benchmark_group("index");
    group.bench_function("build_4096_leaves", |b| {
        b.iter(|| LeafIndex::new(&frame).num_rows())
    });
    let index = LeafIndex::new(&frame);
    let combo = Combination::from_pairs(
        frame.schema(),
        [(AttrId(0), ElementId(0)), (AttrId(2), ElementId(3))],
    );
    group.bench_function("support_counts", |b| {
        b.iter(|| index.support_counts(&combo))
    });
    group.bench_function("classification_power", |b| {
        b.iter(|| classification_power(&frame, &index, AttrId(0)))
    });
    group.finish();
}

/// §V-F scaling study: hold the RAP at one attribute and grow the schema.
/// With the early stop firing in layer 1, both variants' cost is dominated
/// by the per-leaf work (the grid grows 4× per attribute), which is the
/// quantitative backdrop for the paper's claim that RAPMiner's cost tracks
/// the RAP's layer rather than the lattice size; the deletion payoff
/// appears when deeper layers must be searched (Table VI / the
/// `ablation_deletion` bench).
fn attribute_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("attribute_scaling");
    group.sample_size(10);
    for n_attrs in [3usize, 4, 5, 6] {
        let frame = grid_frame(n_attrs, 4);
        let miner = RapMiner::new();
        group.bench_with_input(
            BenchmarkId::new("rapminer_1d_rap", n_attrs),
            &frame,
            |b, frame| b.iter(|| miner.localize(frame, 3).map(|r| r.len()).unwrap_or(0)),
        );
        let no_deletion =
            RapMiner::with_config(rapminer::Config::new().with_redundant_deletion(false));
        group.bench_with_input(
            BenchmarkId::new("no_deletion_1d_rap", n_attrs),
            &frame,
            |b, frame| b.iter(|| no_deletion.localize(frame, 3).map(|r| r.len()).unwrap_or(0)),
        );
    }
    group.finish();
}

/// Association-rule localization with both miner implementations — the
/// paper's remark that "the efficiency of different implementation methods
/// varies greatly", measured (effectiveness is identical by construction;
/// the `assoc` property suite pins FP-growth ≡ Apriori).
fn fp_growth_mining(c: &mut Criterion) {
    use baselines::{FpGrowthLocalizer, MinerKind};
    let frame = grid_frame(4, 8);
    let mut group = c.benchmark_group("assoc_localize_4096");
    let fp = FpGrowthLocalizer::default();
    group.bench_function("fp_growth", |b| {
        b.iter(|| fp.localize(&frame, 3).map(|r| r.len()).unwrap_or(0))
    });
    let ap = FpGrowthLocalizer::default().with_miner(MinerKind::Apriori);
    group.bench_function("apriori", |b| {
        b.iter(|| ap.localize(&frame, 3).map(|r| r.len()).unwrap_or(0))
    });
    group.finish();
}

criterion_group!(
    benches,
    index_operations,
    attribute_scaling,
    fp_growth_mining
);
criterion_main!(benches);
