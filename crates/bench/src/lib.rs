//! # rapminer-bench — experiment drivers
//!
//! One driver per table/figure of the RAPMiner paper's evaluation (§V).
//! Each `src/bin/*` binary prints one artifact; the Criterion benches under
//! `benches/` time the same workloads. See `DESIGN.md` §4 for the complete
//! experiment index and `EXPERIMENTS.md` for recorded results.
//!
//! All drivers are deterministic given the seed constants below, so two
//! runs of any binary print identical effectiveness numbers (timings vary
//! with the host, as in any systems paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

use datasets::{Dataset, RapmdConfig, RapmdGenerator, SqueezeGenConfig, SqueezeGenerator};
use mdkpi::{ElementId, LeafFrame, Schema};

/// Seed used by every experiment binary (printed in their headers).
pub const EXPERIMENT_SEED: u64 = 20220607; // DSN'22 vintage

/// One splitmix64 step (Vigna, 2015). Inlined so the fixture needs no RNG
/// dependency and its byte stream is pinned forever — the thread-scaling
/// gates diff localization output across thread counts and across runs.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from the splitmix64 stream.
fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The Fig. 10 thread-scaling fixture: one labelled frame over the paper's
/// full 33×4×4×20 CDN cross-product (`scale` multiplies the website count,
/// so `scale = 1` is the paper's 10 560 leaves).
///
/// Three fixed root-cause patterns in three different cuboids are injected
/// (`location=L05`, `isp=I2 & channel=C3`, `location=L12 & website=S07`),
/// plus ~3 % scattered single-leaf anomalies. The scattered noise is never
/// covered by a concise pattern, so the search cannot early-stop and must
/// sweep every layer of the lattice — the worst case Fig. 10 scales, and
/// the workload the serial-vs-parallel benchmark times. Forecasts are
/// reconstructed from Eq. 5 exactly as the RAPMD generator does.
pub fn fig10_frame(scale: usize) -> LeafFrame {
    let scale = scale.max(1);
    let locations: Vec<String> = (1..=33).map(|i| format!("L{i:02}")).collect();
    let isps: Vec<String> = (1..=4).map(|i| format!("I{i}")).collect();
    let channels: Vec<String> = (1..=4).map(|i| format!("C{i}")).collect();
    let websites: Vec<String> = (1..=20 * scale).map(|i| format!("S{i:02}")).collect();
    let schema = Schema::builder()
        .attribute("location", locations)
        .attribute("isp", isps)
        .attribute("channel", channels)
        .attribute("website", websites)
        .build()
        .expect("fixture schema is valid");

    let eps = 1e-9; // Eq. 4/5 division guard
    let mut state = EXPERIMENT_SEED ^ 0xF16_10F1;
    let mut builder = LeafFrame::builder(&schema);
    let mut labels = Vec::new();
    for loc in 0..33u32 {
        for isp in 0..4u32 {
            for chan in 0..4u32 {
                for site in 0..20 * scale as u32 {
                    // truth: (L05,*,*,*), (*,I2,C3,*), (L12,*,*,S07)
                    let truth = loc == 4 || (isp == 1 && chan == 2) || (loc == 11 && site == 6);
                    let noise = unit(&mut state) < 0.03;
                    let anomalous = truth || noise;
                    let dev = if anomalous {
                        0.1 + 0.8 * unit(&mut state)
                    } else {
                        -0.02 + 0.11 * unit(&mut state)
                    };
                    let v = 20.0 + 100.0 * unit(&mut state);
                    let f = (v + dev * eps) / (1.0 - dev);
                    builder.push(
                        &[
                            ElementId(loc),
                            ElementId(isp),
                            ElementId(chan),
                            ElementId(site),
                        ],
                        v,
                        f,
                    );
                    labels.push(anomalous);
                }
            }
        }
    }
    let mut frame = builder.build();
    frame.set_labels(labels).expect("one label per pushed row");
    frame
}

/// The Squeeze-B0 dataset at evaluation size (9 groups × `cases_per_group`
/// cases).
pub fn squeeze_dataset(cases_per_group: usize) -> Dataset {
    SqueezeGenerator::new(SqueezeGenConfig {
        cases_per_group,
        ..SqueezeGenConfig::default()
    })
    .generate(EXPERIMENT_SEED)
}

/// RAPMD at the requested number of injected failures (the paper uses
/// 105) over the paper's full 33×4×4×20 CDN topology.
pub fn rapmd_dataset(num_failures: usize) -> Dataset {
    RapmdGenerator::new(RapmdConfig {
        num_failures,
        ..RapmdConfig::default()
    })
    .generate(EXPERIMENT_SEED)
}

/// A small RAPMD (small topology, few failures) for smoke tests and
/// Criterion benches that need short iterations.
pub fn rapmd_small(num_failures: usize) -> Dataset {
    RapmdGenerator::new(RapmdConfig {
        num_failures,
        paper_topology: false,
        ..RapmdConfig::default()
    })
    .generate(EXPERIMENT_SEED)
}

/// Aggregate the completed-span ring into a per-name profile: span count,
/// total time, and mean time, slowest-total first. Benchmarks print this
/// after each group so a run shows where localization time went
/// (CP computation vs. lattice search vs. per-layer enumeration).
pub fn span_summary(limit: usize) -> String {
    let spans = obs::recent_spans(limit);
    let mut agg: Vec<(&'static str, u64, u64)> = Vec::new();
    for s in &spans {
        match agg.iter_mut().find(|(name, _, _)| *name == s.name) {
            Some((_, count, total)) => {
                *count += 1;
                *total += s.elapsed_micros;
            }
            None => agg.push((s.name, 1, s.elapsed_micros)),
        }
    }
    agg.sort_by_key(|&(_, _, total)| std::cmp::Reverse(total));
    let mut out = String::new();
    for (name, count, total) in agg {
        out.push_str(&format!(
            "{name}: {count} spans, {total} us total, {:.1} us mean\n",
            total as f64 / count as f64
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_summary_aggregates_by_name() {
        obs::set_enabled(true);
        obs::clear_spans();
        for _ in 0..3 {
            let _s = obs::span("bench.outer");
            let _inner = obs::span("bench.inner");
        }
        let summary = span_summary(obs::DEFAULT_RING_CAPACITY);
        assert!(summary.contains("bench.outer: 3 spans"), "got: {summary}");
        assert!(summary.contains("bench.inner: 3 spans"), "got: {summary}");
        obs::clear_spans();
    }

    #[test]
    fn fig10_frame_is_reproducible_and_labelled() {
        let a = fig10_frame(1);
        assert_eq!(a.num_rows(), 33 * 4 * 4 * 20);
        let anomalous = a.labels().expect("labelled").iter().filter(|&&l| l).count();
        // three injected RAPs plus ~3 % scattered noise
        assert!(anomalous > 1000, "got {anomalous} anomalous leaves");
        assert!(anomalous < a.num_rows() / 2, "got {anomalous}");
        assert_eq!(a, fig10_frame(1));
        assert_eq!(fig10_frame(2).num_rows(), 2 * 33 * 4 * 4 * 20);
    }

    #[test]
    fn datasets_are_reproducible() {
        let a = squeeze_dataset(1);
        let b = squeeze_dataset(1);
        assert_eq!(a, b);
        let r1 = rapmd_small(2);
        let r2 = rapmd_small(2);
        assert_eq!(r1, r2);
    }
}
