//! # rapminer-bench — experiment drivers
//!
//! One driver per table/figure of the RAPMiner paper's evaluation (§V).
//! Each `src/bin/*` binary prints one artifact; the Criterion benches under
//! `benches/` time the same workloads. See `DESIGN.md` §4 for the complete
//! experiment index and `EXPERIMENTS.md` for recorded results.
//!
//! All drivers are deterministic given the seed constants below, so two
//! runs of any binary print identical effectiveness numbers (timings vary
//! with the host, as in any systems paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

use datasets::{Dataset, RapmdConfig, RapmdGenerator, SqueezeGenConfig, SqueezeGenerator};

/// Seed used by every experiment binary (printed in their headers).
pub const EXPERIMENT_SEED: u64 = 20220607; // DSN'22 vintage

/// The Squeeze-B0 dataset at evaluation size (9 groups × `cases_per_group`
/// cases).
pub fn squeeze_dataset(cases_per_group: usize) -> Dataset {
    SqueezeGenerator::new(SqueezeGenConfig {
        cases_per_group,
        ..SqueezeGenConfig::default()
    })
    .generate(EXPERIMENT_SEED)
}

/// RAPMD at the requested number of injected failures (the paper uses
/// 105) over the paper's full 33×4×4×20 CDN topology.
pub fn rapmd_dataset(num_failures: usize) -> Dataset {
    RapmdGenerator::new(RapmdConfig {
        num_failures,
        ..RapmdConfig::default()
    })
    .generate(EXPERIMENT_SEED)
}

/// A small RAPMD (small topology, few failures) for smoke tests and
/// Criterion benches that need short iterations.
pub fn rapmd_small(num_failures: usize) -> Dataset {
    RapmdGenerator::new(RapmdConfig {
        num_failures,
        paper_topology: false,
        ..RapmdConfig::default()
    })
    .generate(EXPERIMENT_SEED)
}

/// Aggregate the completed-span ring into a per-name profile: span count,
/// total time, and mean time, slowest-total first. Benchmarks print this
/// after each group so a run shows where localization time went
/// (CP computation vs. lattice search vs. per-layer enumeration).
pub fn span_summary(limit: usize) -> String {
    let spans = obs::recent_spans(limit);
    let mut agg: Vec<(&'static str, u64, u64)> = Vec::new();
    for s in &spans {
        match agg.iter_mut().find(|(name, _, _)| *name == s.name) {
            Some((_, count, total)) => {
                *count += 1;
                *total += s.elapsed_micros;
            }
            None => agg.push((s.name, 1, s.elapsed_micros)),
        }
    }
    agg.sort_by_key(|&(_, _, total)| std::cmp::Reverse(total));
    let mut out = String::new();
    for (name, count, total) in agg {
        out.push_str(&format!(
            "{name}: {count} spans, {total} us total, {:.1} us mean\n",
            total as f64 / count as f64
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_summary_aggregates_by_name() {
        obs::set_enabled(true);
        obs::clear_spans();
        for _ in 0..3 {
            let _s = obs::span("bench.outer");
            let _inner = obs::span("bench.inner");
        }
        let summary = span_summary(obs::DEFAULT_RING_CAPACITY);
        assert!(summary.contains("bench.outer: 3 spans"), "got: {summary}");
        assert!(summary.contains("bench.inner: 3 spans"), "got: {summary}");
        obs::clear_spans();
    }

    #[test]
    fn datasets_are_reproducible() {
        let a = squeeze_dataset(1);
        let b = squeeze_dataset(1);
        assert_eq!(a, b);
        let r1 = rapmd_small(2);
        let r2 = rapmd_small(2);
        assert_eq!(r1, r2);
    }
}
