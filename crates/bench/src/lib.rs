//! # rapminer-bench — experiment drivers
//!
//! One driver per table/figure of the RAPMiner paper's evaluation (§V).
//! Each `src/bin/*` binary prints one artifact; the Criterion benches under
//! `benches/` time the same workloads. See `DESIGN.md` §4 for the complete
//! experiment index and `EXPERIMENTS.md` for recorded results.
//!
//! All drivers are deterministic given the seed constants below, so two
//! runs of any binary print identical effectiveness numbers (timings vary
//! with the host, as in any systems paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

use datasets::{Dataset, RapmdConfig, RapmdGenerator, SqueezeGenConfig, SqueezeGenerator};

/// Seed used by every experiment binary (printed in their headers).
pub const EXPERIMENT_SEED: u64 = 20220607; // DSN'22 vintage

/// The Squeeze-B0 dataset at evaluation size (9 groups × `cases_per_group`
/// cases).
pub fn squeeze_dataset(cases_per_group: usize) -> Dataset {
    SqueezeGenerator::new(SqueezeGenConfig {
        cases_per_group,
        ..SqueezeGenConfig::default()
    })
    .generate(EXPERIMENT_SEED)
}

/// RAPMD at the requested number of injected failures (the paper uses
/// 105) over the paper's full 33×4×4×20 CDN topology.
pub fn rapmd_dataset(num_failures: usize) -> Dataset {
    RapmdGenerator::new(RapmdConfig {
        num_failures,
        ..RapmdConfig::default()
    })
    .generate(EXPERIMENT_SEED)
}

/// A small RAPMD (small topology, few failures) for smoke tests and
/// Criterion benches that need short iterations.
pub fn rapmd_small(num_failures: usize) -> Dataset {
    RapmdGenerator::new(RapmdConfig {
        num_failures,
        paper_topology: false,
        ..RapmdConfig::default()
    })
    .generate(EXPERIMENT_SEED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_are_reproducible() {
        let a = squeeze_dataset(1);
        let b = squeeze_dataset(1);
        assert_eq!(a, b);
        let r1 = rapmd_small(2);
        let r2 = rapmd_small(2);
        assert_eq!(r1, r2);
    }
}
