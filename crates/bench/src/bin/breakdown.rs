//! Extension analysis: RC@3 broken down by the dimensionality of the
//! ground-truth RAP on RAPMD — where does each method's recall come from?
fn main() {
    let failures: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(105);
    println!(
        "RC@3 by ground-truth RAP layer on RAPMD ({failures} failures, seed {})",
        rapminer_bench::EXPERIMENT_SEED
    );
    let ds = rapminer_bench::rapmd_dataset(failures);
    print!("{}", rapminer_bench::experiments::rc_breakdown(&ds));
}
