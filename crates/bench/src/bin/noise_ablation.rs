//! Extension ablation: F1 vs per-leaf label-flip rate on Squeeze-style
//! data, quantifying why the paper evaluates at noise level B0.
fn main() {
    let cases_per_group: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    println!(
        "Noise ablation — F1 vs label-flip rate ({cases_per_group} cases/group, seed {})",
        rapminer_bench::EXPERIMENT_SEED
    );
    print!(
        "{}",
        rapminer_bench::experiments::noise_ablation(
            cases_per_group,
            rapminer_bench::EXPERIMENT_SEED
        )
    );
}
