//! Regenerates Fig. 8(b): RC@3/4/5 per method on RAPMD.
fn main() {
    let failures: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(105);
    println!(
        "Fig. 8(b) — RC@k on RAPMD ({failures} failures, seed {})",
        rapminer_bench::EXPERIMENT_SEED
    );
    let ds = rapminer_bench::rapmd_dataset(failures);
    print!("{}", rapminer_bench::experiments::fig8b(&ds));
}
