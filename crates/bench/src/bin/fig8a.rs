//! Regenerates Fig. 8(a): F1-score per method per Squeeze-B0 group.
fn main() {
    let cases_per_group: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    println!(
        "Fig. 8(a) — F1 on Squeeze-B0 ({cases_per_group} cases/group, seed {})",
        rapminer_bench::EXPERIMENT_SEED
    );
    let ds = rapminer_bench::squeeze_dataset(cases_per_group);
    print!("{}", rapminer_bench::experiments::fig8a(&ds));
}
