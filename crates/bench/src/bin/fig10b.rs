//! Regenerates Fig. 10(b): RC@3 sensitivity to t_conf on RAPMD.
fn main() {
    let failures: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(105);
    println!(
        "Fig. 10(b) — t_conf sensitivity on RAPMD ({failures} failures, seed {})",
        rapminer_bench::EXPERIMENT_SEED
    );
    let ds = rapminer_bench::rapmd_dataset(failures);
    print!("{}", rapminer_bench::experiments::fig10b(&ds));
}
