//! Regenerates Table I: the CDN attribute schema.
fn main() {
    println!(
        "Table I — attributes of the CDN system (seed {})",
        rapminer_bench::EXPERIMENT_SEED
    );
    print!("{}", rapminer_bench::experiments::table1());
}
