//! The parallel-search benchmark and regression gate behind
//! `BENCH_localize.json`.
//!
//! Times RAPMiner end-to-end on the Fig. 10 thread-scaling fixture twice —
//! once serial (`threads = 1`) and once on the parallel pool — and:
//!
//! 1. asserts the two runs produce **byte-identical** ranked output
//!    (pattern strings, scores, and search counters), the determinism
//!    contract of the parallel search;
//! 2. writes a machine-readable `BENCH_localize.json` record (commit,
//!    date, core count, thread count, timings, speedup);
//! 3. compares the serial time against the checked-in baseline at
//!    `results/BENCH_localize.baseline.json`, **normalized by a bitset
//!    calibration micro-kernel** timed on both hosts, and exits non-zero
//!    if the normalized serial time regressed by more than 20 %;
//! 4. when the host has at least four cores, additionally requires the
//!    parallel run to be at least 2.5× faster than serial (on smaller
//!    hosts the speedup is physically unreachable, so only determinism
//!    and the serial regression gate apply).
//!
//! The calibration kernel clones, intersects, and accumulates bitsets of
//! the same width the search uses — mimicking the support memo's
//! allocation churn, not just its arithmetic — so `serial_ns /
//! calibrate_ns` is a host-independent measure of search efficiency: a
//! slower or memory-pressured machine slows both numerator and
//! denominator alike, while an algorithmic regression only slows the
//! numerator. Serial and calibration trials are *interleaved* and the
//! reported ratio is the **median of per-pair ratios**, so sustained
//! host drift (CPU steal, thermal throttling, a noisy neighbour) cancels
//! pairwise instead of biasing one measurement block.
//!
//! Usage: `bench_localize [scale] [--write-baseline]`
//!   scale             website-count multiplier for the fixture (default 4;
//!                     at 4 the search keeps all four attributes and sweeps
//!                     the full 15-cuboid lattice, ~64 k combinations)
//!   --write-baseline  rewrite `results/BENCH_localize.baseline.json`

use std::time::Instant;

use baselines::{Localizer, RapMinerLocalizer};
use mdkpi::Bitset;
use rapminer::Config;
use rapminer_bench::fig10_frame;

const K: usize = 5;
const TRIALS: usize = 7;
const BASELINE_PATH: &str = "results/BENCH_localize.baseline.json";
const OUTPUT_PATH: &str = "BENCH_localize.json";
/// Normalized serial-time regression budget (fraction over baseline).
const REGRESSION_BUDGET: f64 = 0.20;
/// Required parallel speedup on hosts with at least this many cores.
const SPEEDUP_FLOOR: f64 = 2.5;
const SPEEDUP_MIN_CORES: usize = 4;

/// Render one localization deterministically: ranked patterns, scores,
/// and the search counters. Two runs are "byte-identical" iff these
/// strings are equal.
fn render(localizer: &RapMinerLocalizer, frame: &mdkpi::LeafFrame) -> String {
    let explained = localizer
        .localize_explained(frame, K)
        .expect("fixture localizes");
    let mut out = String::new();
    for (i, r) in explained.results.iter().enumerate() {
        out.push_str(&format!("{} {} {:.9}\n", i + 1, r.combination, r.score));
    }
    if let Some(trace) = &explained.trace {
        let s = &trace.stats;
        out.push_str(&format!(
            "stats {} {} {} {} {}\n",
            s.attrs_deleted,
            s.cuboids_visited,
            s.combos_visited,
            s.candidates_found,
            s.early_stopped
        ));
    }
    out
}

/// Wall nanoseconds of one localization.
fn localize_once_ns(localizer: &RapMinerLocalizer, frame: &mdkpi::LeafFrame) -> u64 {
    let start = Instant::now();
    let n = localizer.localize(frame, K).map(|r| r.len()).unwrap_or(0);
    std::hint::black_box(n);
    start.elapsed().as_nanos() as u64
}

/// One pass of the host-calibration micro-kernel: clone + intersect +
/// retain bitsets at the fixture's row width, mirroring the support
/// memo's per-layer churn (the search's dominant cost is exactly this —
/// allocate a child row set, AND it with a posting, keep it for the next
/// layer). Returns wall nanoseconds for a fixed amount of work.
fn calibrate_once_ns(rows: usize) -> u64 {
    let mut a = Bitset::new(rows);
    let mut b = Bitset::new(rows);
    for i in (0..rows).step_by(3) {
        a.insert(i);
    }
    for i in (0..rows).step_by(7) {
        b.insert(i);
    }
    let start = Instant::now();
    let mut acc = 0usize;
    let mut memo: Vec<Bitset> = Vec::new();
    for i in 0..20_000 {
        let mut c = a.clone();
        c.intersect_with(&b);
        acc = acc.wrapping_add(c.count());
        // retain like the memo does, releasing a "layer" at a time
        memo.push(c);
        if i % 2_000 == 1_999 {
            memo.clear();
        }
    }
    std::hint::black_box((acc, memo.len()));
    start.elapsed().as_nanos() as u64
}

/// The median of a sample (averaging the middle pair on even sizes).
fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    let n = xs.len();
    if n == 0 {
        return 0;
    }
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2
    }
}

/// Interleaved measurement: `TRIALS` rounds of serial localize, parallel
/// localize, and the calibration kernel back to back. Returns the median
/// of each series plus the median per-round `serial / calibrate` ratio
/// (the drift-immune number the regression gate checks).
fn measure(
    serial: &RapMinerLocalizer,
    parallel: &RapMinerLocalizer,
    frame: &mdkpi::LeafFrame,
) -> (u64, u64, u64, f64) {
    let mut serial_ns = Vec::with_capacity(TRIALS);
    let mut parallel_ns = Vec::with_capacity(TRIALS);
    let mut cal_ns = Vec::with_capacity(TRIALS);
    let mut ratios = Vec::with_capacity(TRIALS);
    for _ in 0..TRIALS {
        let s = localize_once_ns(serial, frame);
        let p = localize_once_ns(parallel, frame);
        let c = calibrate_once_ns(frame.num_rows()).max(1);
        serial_ns.push(s);
        parallel_ns.push(p);
        cal_ns.push(c);
        ratios.push(s as f64 / c as f64);
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    (
        median(serial_ns),
        median(parallel_ns),
        median(cal_ns),
        ratios[TRIALS / 2],
    )
}

/// `git rev-parse --short HEAD`, or `"unknown"` outside a work tree.
fn commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Days since the Unix epoch rendered as an ISO date (proleptic civil
/// calendar; no external time crate).
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut days = (secs / 86_400) as i64;
    // Howard Hinnant's civil_from_days
    days += 719_468;
    let era = days.div_euclid(146_097);
    let doe = days.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// Pull `"field": <number>` out of a flat JSON object without a JSON
/// dependency. Good enough for the records this binary itself writes.
fn json_f64(text: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && c != '.')
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[allow(clippy::too_many_arguments)] // flat record, one field per column
fn record(
    scale: usize,
    cores: usize,
    parallel_threads: usize,
    serial_ns: u64,
    parallel_ns: u64,
    cal_ns: u64,
    normalized: f64,
) -> String {
    format!(
        "{{\n  \"commit\": \"{}\",\n  \"date\": \"{}\",\n  \"scale\": {},\n  \"cores\": {},\n  \"threads\": {},\n  \"serial_ns\": {},\n  \"parallel_ns\": {},\n  \"speedup\": {:.3},\n  \"calibrate_ns\": {},\n  \"normalized\": {:.4}\n}}\n",
        commit(),
        today_utc(),
        scale,
        cores,
        parallel_threads,
        serial_ns,
        parallel_ns,
        serial_ns as f64 / parallel_ns as f64,
        cal_ns,
        normalized,
    )
}

fn main() {
    let mut scale = 4usize;
    let mut write_baseline = false;
    for arg in std::env::args().skip(1) {
        if arg == "--write-baseline" {
            write_baseline = true;
        } else {
            scale = arg.parse().expect("scale must be a positive integer");
        }
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // always exercise the pool path, even on small hosts
    let parallel_threads = cores.max(2);
    let frame = fig10_frame(scale);
    println!(
        "fig10 fixture: {} leaves ({} anomalous), host cores: {cores}",
        frame.num_rows(),
        frame
            .labels()
            .map_or(0, |l| l.iter().filter(|&&x| x).count()),
    );

    let serial = RapMinerLocalizer::with_config(Config::new().with_threads(1));
    let parallel = RapMinerLocalizer::with_config(Config::new().with_threads(parallel_threads));

    // determinism contract: byte-identical ranked output and counters
    let serial_out = render(&serial, &frame);
    let parallel_out = render(&parallel, &frame);
    assert_eq!(
        serial_out, parallel_out,
        "parallel output diverged from serial"
    );
    println!("determinism: serial and {parallel_threads}-thread output byte-identical");
    print!("{serial_out}");

    let (serial_ns, parallel_ns, cal_ns, normalized) = measure(&serial, &parallel, &frame);
    let speedup = serial_ns as f64 / parallel_ns as f64;
    println!(
        "serial: {:.3} ms, {parallel_threads} threads: {:.3} ms, speedup {speedup:.2}x, \
         calibrate {:.3} ms, normalized {normalized:.2} (medians of {TRIALS} paired trials)",
        serial_ns as f64 / 1e6,
        parallel_ns as f64 / 1e6,
        cal_ns as f64 / 1e6,
    );

    let json = record(
        scale,
        cores,
        parallel_threads,
        serial_ns,
        parallel_ns,
        cal_ns,
        normalized,
    );
    std::fs::write(OUTPUT_PATH, &json).expect("write BENCH_localize.json");
    println!("wrote {OUTPUT_PATH}");
    if write_baseline {
        std::fs::write(BASELINE_PATH, &json).expect("write baseline");
        println!("wrote {BASELINE_PATH}");
        return;
    }

    let mut failed = false;
    match std::fs::read_to_string(BASELINE_PATH) {
        Ok(base) => {
            // prefer the paired-median ratio; fall back to the quotient of
            // medians for baselines written before the field existed
            let base_norm = json_f64(&base, "normalized").or_else(|| {
                match (
                    json_f64(&base, "serial_ns"),
                    json_f64(&base, "calibrate_ns"),
                ) {
                    (Some(s), Some(c)) if c > 0.0 => Some(s / c),
                    _ => None,
                }
            });
            match base_norm {
                Some(there) if there > 0.0 => {
                    let here = normalized;
                    let delta = here / there - 1.0;
                    println!(
                        "serial regression check: normalized {here:.2} vs baseline {there:.2} ({:+.1} %)",
                        delta * 100.0
                    );
                    if delta > REGRESSION_BUDGET {
                        eprintln!(
                            "FAIL: serial path regressed {:.1} % > {:.0} % budget",
                            delta * 100.0,
                            REGRESSION_BUDGET * 100.0
                        );
                        failed = true;
                    }
                }
                _ => {
                    eprintln!("FAIL: baseline {BASELINE_PATH} is malformed");
                    failed = true;
                }
            }
        }
        Err(e) => {
            eprintln!("FAIL: no baseline at {BASELINE_PATH} ({e}); run with --write-baseline");
            failed = true;
        }
    }

    if cores >= SPEEDUP_MIN_CORES {
        if speedup < SPEEDUP_FLOOR {
            eprintln!(
                "FAIL: speedup {speedup:.2}x < {SPEEDUP_FLOOR}x floor on a {cores}-core host"
            );
            failed = true;
        }
    } else {
        println!(
            "(speedup floor of {SPEEDUP_FLOOR}x waived: host has {cores} < {SPEEDUP_MIN_CORES} cores)"
        );
    }

    if failed {
        std::process::exit(1);
    }
    println!("bench_localize: all gates passed");
}
