//! Regenerates Table VI: the redundant-attribute-deletion ablation.
fn main() {
    let failures: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(105);
    println!(
        "Table VI — redundant attribute deletion ablation on RAPMD ({failures} failures, seed {})",
        rapminer_bench::EXPERIMENT_SEED
    );
    let ds = rapminer_bench::rapmd_dataset(failures);
    print!("{}", rapminer_bench::experiments::table6(&ds));
}
