//! Regenerates Fig. 9(b): mean running time per method on RAPMD.
fn main() {
    let failures: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(105);
    println!(
        "Fig. 9(b) — mean seconds on RAPMD ({failures} failures, seed {})",
        rapminer_bench::EXPERIMENT_SEED
    );
    let ds = rapminer_bench::rapmd_dataset(failures);
    print!("{}", rapminer_bench::experiments::fig9b(&ds));
}
