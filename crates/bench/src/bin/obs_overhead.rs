//! Measure the runtime cost of span tracing on end-to-end localization.
//!
//! Runs RAPMiner on the hardest-group case of the same Squeeze fixture the
//! `localizers` Criterion bench uses, alternating trials with spans
//! enabled and disabled at runtime. Each adjacent on/off pair yields one
//! relative-overhead sample (pairing cancels sustained host drift — CPU
//! frequency scaling, a noisy neighbour — that would bias two separate
//! measurement blocks), and the reported overhead is the *median* over
//! all pairs, which is robust to the occasional trial that catches a
//! scheduler hiccup. Prints the timings and the overhead, and exits
//! non-zero when the overhead exceeds the budget — `scripts/ci.sh` runs
//! this as the tracing overhead smoke test.
//!
//! Usage: `obs_overhead [budget-percent]` (default budget: 5%).

use std::time::Instant;

use baselines::{Localizer, RapMinerLocalizer};
use rapminer_bench::squeeze_dataset;

const TRIALS: usize = 15;
const ITERS_PER_TRIAL: usize = 40;
const K: usize = 5;

/// Wall seconds for one trial of `ITERS_PER_TRIAL` localizations.
fn trial_seconds(localizer: &RapMinerLocalizer, frame: &mdkpi::LeafFrame) -> f64 {
    let start = Instant::now();
    for _ in 0..ITERS_PER_TRIAL {
        let n = localizer.localize(frame, K).map(|r| r.len()).unwrap_or(0);
        std::hint::black_box(n);
    }
    start.elapsed().as_secs_f64()
}

fn main() {
    let budget_percent: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("budget must be a number (percent)"))
        .unwrap_or(5.0);

    let dataset = squeeze_dataset(1);
    let case = dataset.group("(3,3)").next().expect("group exists");
    let frame = &case.frame;
    let localizer = RapMinerLocalizer::default();

    // warm up caches and the allocator outside the timed region
    obs::set_enabled(true);
    let _ = localizer.localize(frame, K);
    obs::set_enabled(false);
    let _ = localizer.localize(frame, K);

    let mut overheads = Vec::with_capacity(TRIALS);
    let mut best_on = f64::INFINITY;
    let mut best_off = f64::INFINITY;
    for _ in 0..TRIALS {
        obs::set_enabled(true);
        obs::clear_spans();
        let on = trial_seconds(&localizer, frame);
        obs::set_enabled(false);
        let off = trial_seconds(&localizer, frame);
        best_on = best_on.min(on);
        best_off = best_off.min(off);
        overheads.push((on - off) / off * 100.0);
    }
    obs::clear_spans();

    // leave tracing in its default-on state for anything run afterwards
    obs::set_enabled(true);

    overheads.sort_by(f64::total_cmp);
    let overhead_percent = overheads[TRIALS / 2];
    println!(
        "obs_overhead: spans_on={best_on:.6}s spans_off={best_off:.6}s (best trial) \
         overhead={overhead_percent:.2}% budget={budget_percent:.1}% \
         (median of {TRIALS} paired trials, {ITERS_PER_TRIAL} localizations each)"
    );
    if overhead_percent > budget_percent {
        eprintln!("obs_overhead: FAIL — tracing overhead exceeds the {budget_percent:.1}% budget");
        std::process::exit(1);
    }
    println!("obs_overhead: OK");
}
