//! Measure the runtime cost of span tracing on end-to-end localization.
//!
//! Runs RAPMiner on the hardest-group case of the same Squeeze fixture the
//! `localizers` Criterion bench uses, alternating trials with spans
//! enabled and disabled at runtime. A flight recorder at the daemon's
//! default capacity stays registered on the measuring thread for the
//! whole run, so the spans-on trials pay the same per-span recording
//! cost a production rapd worker pays — the <5% budget covers tracing
//! *and* the flight recorder together.
//!
//! The measurement is *steady state*: the completed-span ring is filled
//! to capacity during warmup and never cleared between trials, exactly
//! like a long-running daemon. (Refilling the ring from empty inside the
//! timed region charges a burst of cold allocations to the spans-on side
//! that production never pays per frame.) Each adjacent on/off pair
//! yields one relative-overhead sample — pairing cancels sustained host
//! drift (CPU frequency scaling, a noisy neighbour), and the order
//! *within* each pair alternates so a ramp that favours whichever block
//! runs first cancels across pairs instead of biasing one side. The
//! reported overhead is the *median* over all pairs, robust to the
//! occasional trial that catches a scheduler hiccup. Prints the timings
//! and the overhead, and exits non-zero when the overhead exceeds the
//! budget — `scripts/ci.sh` runs this as the tracing overhead smoke test.
//!
//! Usage: `obs_overhead [budget-percent]` (default budget: 5%).

use std::time::Instant;

use baselines::{Localizer, RapMinerLocalizer};
use rapminer_bench::squeeze_dataset;

// Trials long enough (~15 ms) that scheduler noise doesn't dominate a
// single measurement, and enough of them that the median is stable even
// on a host still cooling down from a full CI build.
const TRIALS: usize = 21;
const ITERS_PER_TRIAL: usize = 100;
const K: usize = 5;

/// Wall seconds for one trial of `ITERS_PER_TRIAL` localizations.
fn trial_seconds(localizer: &RapMinerLocalizer, frame: &mdkpi::LeafFrame) -> f64 {
    let start = Instant::now();
    for _ in 0..ITERS_PER_TRIAL {
        let n = localizer.localize(frame, K).map(|r| r.len()).unwrap_or(0);
        std::hint::black_box(n);
    }
    start.elapsed().as_secs_f64()
}

fn main() {
    let budget_percent: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("budget must be a number (percent)"))
        .unwrap_or(5.0);

    // mirror a rapd shard worker: a registered flight recorder tees every
    // span/event line on this thread into its ring for the entire run
    let _recorder = obs::recorder::register("bench", obs::recorder::DEFAULT_FLIGHT_CAPACITY);

    let dataset = squeeze_dataset(1);
    let case = dataset.group("(3,3)").next().expect("group exists");
    let frame = &case.frame;
    let localizer = RapMinerLocalizer::default();

    // Warm up caches and the allocator outside the timed region, and run
    // enough traced localizations to fill the completed-span ring and the
    // flight ring to capacity — steady state, where every push evicts.
    obs::set_enabled(true);
    for _ in 0..ITERS_PER_TRIAL {
        let _ = localizer.localize(frame, K);
    }
    obs::set_enabled(false);
    let _ = localizer.localize(frame, K);

    let mut overheads = Vec::with_capacity(TRIALS);
    let mut best_on = f64::INFINITY;
    let mut best_off = f64::INFINITY;
    for i in 0..TRIALS {
        let (on, off) = if i % 2 == 0 {
            obs::set_enabled(true);
            let on = trial_seconds(&localizer, frame);
            obs::set_enabled(false);
            let off = trial_seconds(&localizer, frame);
            (on, off)
        } else {
            obs::set_enabled(false);
            let off = trial_seconds(&localizer, frame);
            obs::set_enabled(true);
            let on = trial_seconds(&localizer, frame);
            (on, off)
        };
        best_on = best_on.min(on);
        best_off = best_off.min(off);
        overheads.push((on - off) / off * 100.0);
    }
    obs::clear_spans();

    // leave tracing in its default-on state for anything run afterwards
    obs::set_enabled(true);

    overheads.sort_by(f64::total_cmp);
    let overhead_percent = overheads[TRIALS / 2];
    println!(
        "obs_overhead: spans_on={best_on:.6}s spans_off={best_off:.6}s (best trial) \
         overhead={overhead_percent:.2}% budget={budget_percent:.1}% \
         (median of {TRIALS} paired trials, {ITERS_PER_TRIAL} localizations each)"
    );
    if overhead_percent > budget_percent {
        eprintln!("obs_overhead: FAIL — tracing overhead exceeds the {budget_percent:.1}% budget");
        std::process::exit(1);
    }
    println!("obs_overhead: OK");
}
