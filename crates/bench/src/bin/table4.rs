//! Regenerates Table IV: cuboid decrease ratio after deleting k attributes.
fn main() {
    println!("Table IV — DecreaseRatio@k (paper bound vs exact Eq. 2)");
    print!("{}", rapminer_bench::experiments::table4());
}
