//! The per-table / per-figure experiment drivers. Each returns an
//! [`eval::Table`] printing the same rows or series the paper reports.

use baselines::{all_localizers, RapMinerLocalizer};
use cdnsim::CdnTopology;
use datasets::Dataset;
use eval::{evaluate_f1, evaluate_rc, Table};
use mdkpi::decrease_ratio;
use rapminer::Config;

/// Table I: the attribute schema of the studied CDN.
pub fn table1() -> Table {
    let topology = CdnTopology::paper(crate::EXPERIMENT_SEED);
    let schema = topology.schema();
    let mut t = Table::new(["attribute", "elements", "examples"]);
    for (_, def) in schema.attributes() {
        let examples: Vec<&str> = (0..2.min(def.len()))
            .map(|i| def.element_name(mdkpi::ElementId(i as u32)))
            .collect();
        t.row([
            def.name().to_string(),
            def.len().to_string(),
            examples.join(", "),
        ]);
    }
    t
}

/// Table IV: the fraction of cuboids pruned by deleting `k` redundant
/// attributes — the paper's lower bound next to the exact Eq. 2 value for
/// the 4-attribute CDN schema (where defined) and a 6-attribute system.
pub fn table4() -> Table {
    let mut t = Table::new(["k", "bound (2^k-1)/2^k", "exact n=4", "exact n=6"]);
    for k in 1u32..=5 {
        let bound = ((1u64 << k) - 1) as f64 / (1u64 << k) as f64;
        let n4 = if k <= 4 {
            format!("{:.4}", decrease_ratio(4, k))
        } else {
            "-".to_string()
        };
        t.row([
            k.to_string(),
            format!("{bound:.5}"),
            n4,
            format!("{:.5}", decrease_ratio(6, k)),
        ]);
    }
    t
}

/// Fig. 8(a): F1-score of every method per Squeeze-B0 `(d, r)` group.
pub fn fig8a(dataset: &Dataset) -> Table {
    let methods = all_localizers();
    let groups = dataset.group_names();
    let mut headers = vec!["method".to_string()];
    headers.extend(groups.iter().cloned());
    let mut t = Table::new(headers);
    for method in &methods {
        let mut row = vec![method.name().to_string()];
        for group in &groups {
            let cases: Vec<_> = dataset.group(group).cloned().collect();
            let outcome = evaluate_f1(method.as_ref(), &cases);
            row.push(format!("{:.3}", outcome.f1));
        }
        t.row(row);
    }
    t
}

/// Fig. 8(b): RC@3 / RC@4 / RC@5 of every method on RAPMD.
pub fn fig8b(dataset: &Dataset) -> Table {
    let methods = all_localizers();
    let mut t = Table::new(["method", "RC@3", "RC@4", "RC@5"]);
    for method in &methods {
        let outcome = evaluate_rc(method.as_ref(), &dataset.cases, &[3, 4, 5]);
        t.row([
            method.name().to_string(),
            format!("{:.3}", outcome.rc[0].1),
            format!("{:.3}", outcome.rc[1].1),
            format!("{:.3}", outcome.rc[2].1),
        ]);
    }
    t
}

/// Fig. 9(a): mean per-case running time (seconds) of every method per
/// Squeeze-B0 group.
pub fn fig9a(dataset: &Dataset) -> Table {
    let methods = all_localizers();
    let groups = dataset.group_names();
    let mut headers = vec!["method".to_string()];
    headers.extend(groups.iter().cloned());
    let mut t = Table::new(headers);
    for method in &methods {
        let mut row = vec![method.name().to_string()];
        for group in &groups {
            let cases: Vec<_> = dataset.group(group).cloned().collect();
            let outcome = evaluate_f1(method.as_ref(), &cases);
            row.push(format!("{:.4}", outcome.mean_seconds));
        }
        t.row(row);
    }
    t
}

/// Fig. 9(b): mean per-case running time (seconds) of every method on
/// RAPMD.
pub fn fig9b(dataset: &Dataset) -> Table {
    let methods = all_localizers();
    let mut t = Table::new(["method", "mean seconds"]);
    for method in &methods {
        let outcome = evaluate_rc(method.as_ref(), &dataset.cases, &[3]);
        t.row([
            method.name().to_string(),
            format!("{:.4}", outcome.mean_seconds),
        ]);
    }
    t
}

/// Fig. 10(a): RC@3 of RAPMiner on RAPMD as `t_CP` sweeps (sensitivity).
pub fn fig10a(dataset: &Dataset) -> Table {
    let mut t = Table::new(["t_CP", "RC@3"]);
    for t_cp in [0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.10] {
        let config = Config::new().with_t_cp(t_cp).expect("valid threshold");
        let method = RapMinerLocalizer::with_config(config);
        let outcome = evaluate_rc(&method, &dataset.cases, &[3]);
        t.row([format!("{t_cp:.4}"), format!("{:.3}", outcome.rc[0].1)]);
    }
    t
}

/// Fig. 10(b): RC@3 of RAPMiner on RAPMD as `t_conf` sweeps (sensitivity).
pub fn fig10b(dataset: &Dataset) -> Table {
    let mut t = Table::new(["t_conf", "RC@3"]);
    for t_conf in [0.55, 0.65, 0.75, 0.85, 0.95] {
        let config = Config::new().with_t_conf(t_conf).expect("valid threshold");
        let method = RapMinerLocalizer::with_config(config);
        let outcome = evaluate_rc(&method, &dataset.cases, &[3]);
        t.row([format!("{t_conf:.2}"), format!("{:.3}", outcome.rc[0].1)]);
    }
    t
}

/// Table VI: RAPMiner with vs without redundant attribute deletion on
/// RAPMD — RC@3, mean seconds, efficiency improvement and effectiveness
/// decrease.
pub fn table6(dataset: &Dataset) -> Table {
    let with = RapMinerLocalizer::with_config(Config::new().with_redundant_deletion(true));
    let without = RapMinerLocalizer::with_config(Config::new().with_redundant_deletion(false));
    let with_out = evaluate_rc(&with, &dataset.cases, &[3]);
    let without_out = evaluate_rc(&without, &dataset.cases, &[3]);
    let (rc_w, rc_wo) = (with_out.rc[0].1, without_out.rc[0].1);
    let (t_w, t_wo) = (with_out.mean_seconds, without_out.mean_seconds);
    let efficiency_improvement = if t_wo > 0.0 { (t_wo - t_w) / t_wo } else { 0.0 };
    let effectiveness_decrease = if rc_wo > 0.0 {
        (rc_wo - rc_w) / rc_wo
    } else {
        0.0
    };
    let mut t = Table::new(["variant", "RC@3", "time (s)"]);
    t.row([
        "with redundant attribute deletion".to_string(),
        format!("{rc_w:.3}"),
        format!("{t_w:.4}"),
    ]);
    t.row([
        "without redundant attribute deletion".to_string(),
        format!("{rc_wo:.3}"),
        format!("{t_wo:.4}"),
    ]);
    t.row([
        "effectiveness decrease / efficiency improvement".to_string(),
        format!("{:.2}%", 100.0 * effectiveness_decrease),
        format!("{:.2}%", 100.0 * efficiency_improvement),
    ]);
    t
}

/// Noise-level ablation (extension): the published Squeeze dataset ships
/// noise levels B0–B3; the paper evaluates at B0 arguing that noise only
/// degrades the upstream detection, uniformly hurting every label-consuming
/// method. This sweep regenerates the dataset at increasing label-flip
/// rates and reports each method's overall F1, making that argument
/// measurable.
pub fn noise_ablation(cases_per_group: usize, seed: u64) -> Table {
    use datasets::{SqueezeGenConfig, SqueezeGenerator};
    let levels = [0.0, 0.005, 0.01, 0.02, 0.05];
    let mut headers = vec!["method".to_string()];
    headers.extend(levels.iter().map(|l| format!("flip={l}")));
    let mut t = Table::new(headers);
    let datasets: Vec<Dataset> = levels
        .iter()
        .map(|&label_noise| {
            SqueezeGenerator::new(SqueezeGenConfig {
                cases_per_group,
                label_noise,
                ..SqueezeGenConfig::default()
            })
            .generate(seed)
        })
        .collect();
    for method in all_localizers() {
        let mut row = vec![method.name().to_string()];
        for ds in &datasets {
            let outcome = evaluate_f1(method.as_ref(), &ds.cases);
            row.push(format!("{:.3}", outcome.f1));
        }
        t.row(row);
    }
    t
}

/// Every method's name, for smoke tests.
pub fn method_names() -> Vec<&'static str> {
    all_localizers().iter().map(|m| m.name()).collect()
}

/// RC@3 by ground-truth RAP layer per method (extension; see the
/// `breakdown` binary).
pub fn rc_breakdown(dataset: &Dataset) -> Table {
    use eval::rc_by_truth_layer;
    let methods = all_localizers();
    // discover the layers present
    let mut layers: Vec<usize> = dataset
        .cases
        .iter()
        .flat_map(|c| c.truth.iter().map(|t| t.layer()))
        .collect();
    layers.sort_unstable();
    layers.dedup();
    let mut headers = vec!["method".to_string()];
    headers.extend(layers.iter().map(|l| format!("layer {l}")));
    let mut t = Table::new(headers);
    for method in &methods {
        let outcome = evaluate_rc(method.as_ref(), &dataset.cases, &[3]);
        let pairs: Vec<(Vec<mdkpi::Combination>, Vec<mdkpi::Combination>)> = outcome
            .cases
            .iter()
            .zip(&dataset.cases)
            .map(|(o, c)| (o.predictions.clone(), c.truth.clone()))
            .collect();
        let breakdown = rc_by_truth_layer(&pairs, 3);
        let mut row = vec![method.name().to_string()];
        for layer in &layers {
            let cell = breakdown
                .iter()
                .find(|(l, _, _)| l == layer)
                .map(|(_, rc, n)| format!("{rc:.3} (n={n})"))
                .unwrap_or_else(|| "-".to_string());
            row.push(cell);
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_four_attributes() {
        let t = table1();
        assert_eq!(t.len(), 4);
        let s = t.to_string();
        assert!(s.contains("location"));
        assert!(s.contains("33"));
        assert!(s.contains("website"));
        assert!(s.contains("20"));
    }

    #[test]
    fn table4_matches_paper_bounds() {
        let t = table4().to_string();
        assert!(t.contains("0.50000")); // k=1 bound
        assert!(t.contains("0.96875")); // k=5 bound
    }

    #[test]
    fn fig8a_smoke() {
        let ds = crate::squeeze_dataset(1);
        let t = fig8a(&ds);
        assert_eq!(t.len(), method_names().len());
        let s = t.to_string();
        assert!(s.contains("rapminer"));
        assert!(s.contains("(3,3)"));
    }

    #[test]
    fn fig8b_and_sweeps_smoke() {
        let ds = crate::rapmd_small(4);
        assert_eq!(fig8b(&ds).len(), method_names().len());
        assert_eq!(fig10a(&ds).len(), 8);
        assert_eq!(fig10b(&ds).len(), 5);
        assert_eq!(table6(&ds).len(), 3);
    }
}
