//! # mdkpi — multi-dimensional KPI data model
//!
//! This crate provides the data substrate shared by every anomaly-localization
//! algorithm in the RAPMiner reproduction:
//!
//! * [`Schema`] — an attribute schema (e.g. the CDN's
//!   `Location × AccessType × OS × Website`) with string interning, so all
//!   hot-path operations run on dense integer ids;
//! * [`Combination`] — an attribute combination such as
//!   `(L1, *, *, Site1)`, with the parent/child/ancestor/descendant algebra
//!   used throughout the paper;
//! * [`Cuboid`] — a set of concrete attributes, i.e. one node of the cuboid
//!   lattice of Fig. 2 in the paper, represented as a bitmask;
//! * [`LeafFrame`] — the table of most-fine-grained attribute combinations
//!   with actual value `v`, forecast value `f`, and anomaly labels
//!   (the paper's Table III);
//! * [`LeafIndex`] — an inverted index over a frame, making
//!   `support_count(ac)` and `support_count(ac, Anomaly)` (Criteria 2)
//!   bitset intersections instead of scans;
//! * aggregation of fundamental KPIs up the lattice and derived-KPI
//!   transformations (the paper's Fig. 4);
//! * CSV I/O in the layout of the published Squeeze dataset
//!   (attribute columns + `real` + `predict`).
//!
//! # Example
//!
//! ```
//! use mdkpi::{Schema, Combination, LeafFrame};
//!
//! # fn main() -> Result<(), mdkpi::Error> {
//! let schema = Schema::builder()
//!     .attribute("location", ["L1", "L2"])
//!     .attribute("os", ["android", "ios"])
//!     .build()?;
//!
//! // The root combination (*, *) is the ancestor of everything.
//! let root = Combination::root(&schema);
//! let leaf = schema.parse_combination("location=L1&os=android")?;
//! assert!(root.is_ancestor_of(&leaf));
//! assert_eq!(leaf.layer(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agg;
mod attr;
mod bitset;
mod combo;
mod csv_io;
mod cuboid;
mod error;
mod frame;
mod index;
mod ops;
mod truth;

pub use agg::{aggregate, aggregate_labels, DerivedKpi, RatioKpi};
pub use attr::{AttrId, AttributeDef, ElementId, Schema, SchemaBuilder};
pub use bitset::Bitset;
pub use combo::Combination;
pub use csv_io::{read_frame_csv, write_frame_csv};
pub use cuboid::{decrease_ratio, Cuboid, CuboidCombinations, CuboidLattice};
pub use error::Error;
pub use frame::{LeafFrame, LeafFrameBuilder, LeafRow};
pub use index::LeafIndex;
pub use truth::{format_truth, parse_truth};

/// Convenient result alias used across this crate.
pub type Result<T> = std::result::Result<T, Error>;
