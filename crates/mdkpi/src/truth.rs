use crate::attr::Schema;
use crate::combo::Combination;
use crate::{Error, Result};

/// Parse a ground-truth RAP set from its textual form: combinations in
/// `attr=elem&attr=elem` notation separated by `;`.
///
/// The empty string parses to an empty set. Whitespace around separators is
/// ignored. Duplicate combinations are rejected — a RAP set is a set.
///
/// # Errors
///
/// Fails on unparsable combinations or duplicates.
///
/// # Example
///
/// ```
/// use mdkpi::{Schema, parse_truth, format_truth};
///
/// # fn main() -> Result<(), mdkpi::Error> {
/// let schema = Schema::builder()
///     .attribute("a", ["a1", "a2"])
///     .attribute("b", ["b1", "b2"])
///     .build()?;
/// let truth = parse_truth(&schema, "a=a1; a=a2&b=b2")?;
/// assert_eq!(truth.len(), 2);
/// assert_eq!(format_truth(&truth), "a=a1;a=a2&b=b2");
/// # Ok(())
/// # }
/// ```
pub fn parse_truth(schema: &Schema, text: &str) -> Result<Vec<Combination>> {
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Ok(Vec::new());
    }
    let mut out: Vec<Combination> = Vec::new();
    for part in trimmed.split(';') {
        let combo = Combination::parse(schema, part.trim())?;
        if out.contains(&combo) {
            return Err(Error::ParseCombination {
                input: text.to_string(),
                reason: format!("duplicate combination `{}`", part.trim()),
            });
        }
        out.push(combo);
    }
    Ok(out)
}

/// Render a RAP set in the form read by [`parse_truth`].
pub fn format_truth(raps: &[Combination]) -> String {
    raps.iter()
        .map(Combination::to_spec_string)
        .collect::<Vec<_>>()
        .join(";")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::builder()
            .attribute("a", ["a1", "a2"])
            .attribute("b", ["b1", "b2"])
            .build()
            .unwrap()
    }

    #[test]
    fn roundtrip() {
        let s = schema();
        let truth = parse_truth(&s, "a=a2 ; b=b1&a=a1").unwrap();
        let text = format_truth(&truth);
        let back = parse_truth(&s, &text).unwrap();
        assert_eq!(truth, back);
    }

    #[test]
    fn empty_set() {
        let s = schema();
        assert!(parse_truth(&s, "").unwrap().is_empty());
        assert!(parse_truth(&s, "   ").unwrap().is_empty());
        assert_eq!(format_truth(&[]), "");
    }

    #[test]
    fn duplicates_rejected() {
        let s = schema();
        let err = parse_truth(&s, "a=a1;a=a1").unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn unknown_names_propagate() {
        let s = schema();
        assert!(parse_truth(&s, "zzz=a1").is_err());
    }

    #[test]
    fn root_combination_in_truth() {
        // A single root RAP ("everything is broken") is expressible as ";".
        let s = schema();
        let truth = parse_truth(&s, ";").unwrap_err();
        // ";" means two empty parts -> two roots -> duplicate
        assert!(truth.to_string().contains("duplicate"));
    }
}
