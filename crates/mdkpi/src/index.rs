use crate::attr::{AttrId, ElementId};
use crate::bitset::Bitset;
use crate::combo::Combination;
use crate::frame::LeafFrame;

/// An inverted index over a [`LeafFrame`]: for every `(attribute, element)`
/// pair, the bitset of rows carrying that element, plus the bitset of
/// anomalous rows when the frame is labelled.
///
/// This is the workhorse behind the paper's Criteria 2:
/// `Confidence(ac ⇒ Anomaly) = support_count(ac, Anomaly) / support_count(ac)`
/// becomes two bitset intersection counts.
///
/// # Example
///
/// ```
/// use mdkpi::{Schema, LeafFrame, LeafIndex};
///
/// # fn main() -> Result<(), mdkpi::Error> {
/// let schema = Schema::builder()
///     .attribute("a", ["a1", "a2"])
///     .attribute("b", ["b1", "b2"])
///     .build()?;
/// let mut b = LeafFrame::builder(&schema);
/// b.push_named(&[("a", "a1"), ("b", "b1")], 10.0, 5.0)?;
/// b.push_named(&[("a", "a1"), ("b", "b2")], 12.0, 6.0)?;
/// b.push_named(&[("a", "a2"), ("b", "b1")], 7.0, 7.0)?;
/// let mut frame = b.build();
/// frame.label_with(|v, f| v > 1.5 * f);
///
/// let index = LeafIndex::new(&frame);
/// let ac = schema.parse_combination("a=a1")?;
/// assert_eq!(index.support_count(&ac), 2);
/// assert_eq!(index.support_count_anomalous(&ac), 2);
/// assert_eq!(index.confidence(&ac), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LeafIndex {
    /// `postings[attr][element]` = rows carrying that element.
    postings: Vec<Vec<Bitset>>,
    anomalous: Option<Bitset>,
    num_rows: usize,
}

impl LeafIndex {
    /// Build the index for a frame. `O(rows × attributes)`.
    pub fn new(frame: &LeafFrame) -> Self {
        let schema = frame.schema();
        let n_rows = frame.num_rows();
        let mut postings: Vec<Vec<Bitset>> = schema
            .attr_ids()
            .map(|a| vec![Bitset::new(n_rows); schema.attribute(a).len()])
            .collect();
        for i in 0..n_rows {
            for (a, e) in frame.row_elements(i).iter().enumerate() {
                postings[a][e.index()].insert(i);
            }
        }
        let anomalous = frame.labels().map(|labels| {
            let mut b = Bitset::new(n_rows);
            for (i, &l) in labels.iter().enumerate() {
                if l {
                    b.insert(i);
                }
            }
            b
        });
        LeafIndex {
            postings,
            anomalous,
            num_rows: n_rows,
        }
    }

    /// Number of rows in the indexed frame.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// The posting bitset for one `(attribute, element)` pair.
    ///
    /// # Panics
    ///
    /// Panics if the attribute or element id is out of bounds.
    pub fn posting(&self, attr: AttrId, element: ElementId) -> &Bitset {
        &self.postings[attr.index()][element.index()]
    }

    /// The bitset of anomalous rows, if the frame was labelled.
    pub fn anomalous_rows(&self) -> Option<&Bitset> {
        self.anomalous.as_ref()
    }

    /// Materialize the bitset of rows covered by `combination`.
    pub fn rows_matching(&self, combination: &Combination) -> Bitset {
        let mut concrete: Vec<&Bitset> = Vec::new();
        for (i, cell) in combination.cells().iter().enumerate() {
            if let Some(e) = cell {
                concrete.push(&self.postings[i][e.index()]);
            }
        }
        match concrete.split_first() {
            None => Bitset::all_set(self.num_rows),
            Some((first, rest)) => {
                // Start from the sparsest posting to keep intersections cheap.
                let mut acc = (*first).clone();
                for p in rest {
                    acc.intersect_with(p);
                    if acc.is_zero() {
                        break;
                    }
                }
                acc
            }
        }
    }

    /// The paper's `support_count_D(ac)`: number of leaf rows covered by
    /// `combination`.
    pub fn support_count(&self, combination: &Combination) -> usize {
        self.rows_matching(combination).count()
    }

    /// The paper's `support_count_D(ac, Anomaly)`: covered rows that are
    /// labelled anomalous. Returns 0 when the frame is unlabelled.
    pub fn support_count_anomalous(&self, combination: &Combination) -> usize {
        match &self.anomalous {
            None => 0,
            Some(anom) => self.rows_matching(combination).intersection_count(anom),
        }
    }

    /// The paper's Criteria-2 metric,
    /// `Confidence(ac ⇒ Anomaly) = support_count(ac, Anomaly) / support_count(ac)`.
    ///
    /// Returns 0.0 for combinations covering no rows (no evidence of
    /// anomaly).
    pub fn confidence(&self, combination: &Combination) -> f64 {
        match &self.anomalous {
            None => 0.0,
            Some(anom) => {
                let rows = self.rows_matching(combination);
                let support = rows.count();
                if support == 0 {
                    0.0
                } else {
                    rows.intersection_count(anom) as f64 / support as f64
                }
            }
        }
    }

    /// Both counts in one pass: `(support, anomalous_support)`.
    pub fn support_counts(&self, combination: &Combination) -> (usize, usize) {
        let rows = self.rows_matching(combination);
        let support = rows.count();
        let anom = self
            .anomalous
            .as_ref()
            .map_or(0, |a| rows.intersection_count(a));
        (support, anom)
    }

    /// Sum of `v` and `f` over the rows covered by `combination`
    /// (the Fig. 4 fundamental-KPI aggregation for one combination).
    pub fn sums(&self, frame: &LeafFrame, combination: &Combination) -> (f64, f64) {
        let rows = self.rows_matching(combination);
        let mut v = 0.0;
        let mut f = 0.0;
        for i in rows.iter_ones() {
            v += frame.v(i);
            f += frame.f(i);
        }
        (v, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    fn labelled_frame() -> LeafFrame {
        let s = Schema::builder()
            .attribute("a", ["a1", "a2", "a3"])
            .attribute("b", ["b1", "b2"])
            .build()
            .unwrap();
        let mut b = LeafFrame::builder(&s);
        // (a1, *) anomalous: both a1 rows deviate badly.
        b.push_labelled(&[ElementId(0), ElementId(0)], 10.0, 5.0, true);
        b.push_labelled(&[ElementId(0), ElementId(1)], 9.0, 4.0, true);
        b.push_labelled(&[ElementId(1), ElementId(0)], 5.0, 5.0, false);
        b.push_labelled(&[ElementId(1), ElementId(1)], 5.1, 5.0, false);
        b.push_labelled(&[ElementId(2), ElementId(0)], 4.9, 5.0, false);
        b.build()
    }

    #[test]
    fn support_counts_match_scan() {
        let frame = labelled_frame();
        let idx = LeafIndex::new(&frame);
        for spec in ["", "a=a1", "b=b2", "a=a3&b=b1", "a=a2&b=b2"] {
            let c = frame.schema().parse_combination(spec).unwrap();
            assert_eq!(
                idx.support_count(&c),
                frame.rows_matching(&c).len(),
                "support mismatch for {spec:?}"
            );
        }
    }

    #[test]
    fn confidence_matches_paper_formula() {
        let frame = labelled_frame();
        let idx = LeafIndex::new(&frame);
        let a1 = frame.schema().parse_combination("a=a1").unwrap();
        assert_eq!(idx.support_counts(&a1), (2, 2));
        assert_eq!(idx.confidence(&a1), 1.0);
        let b1 = frame.schema().parse_combination("b=b1").unwrap();
        // rows 0, 2, 4 — one anomalous
        assert!((idx.confidence(&b1) - 1.0 / 3.0).abs() < 1e-12);
        let root = Combination::root(frame.schema());
        assert!((idx.confidence(&root) - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn zero_support_has_zero_confidence() {
        let frame = labelled_frame();
        let idx = LeafIndex::new(&frame);
        // (a3, b2) does not occur in the frame
        let c = frame.schema().parse_combination("a=a3&b=b2").unwrap();
        assert_eq!(idx.support_count(&c), 0);
        assert_eq!(idx.confidence(&c), 0.0);
    }

    #[test]
    fn unlabelled_frame_reports_no_anomalies() {
        let s = Schema::builder().attribute("a", ["a1"]).build().unwrap();
        let mut b = LeafFrame::builder(&s);
        b.push(&[ElementId(0)], 1.0, 1.0);
        let frame = b.build();
        let idx = LeafIndex::new(&frame);
        assert!(idx.anomalous_rows().is_none());
        let root = Combination::root(&s);
        assert_eq!(idx.support_count_anomalous(&root), 0);
        assert_eq!(idx.confidence(&root), 0.0);
    }

    #[test]
    fn sums_aggregate_v_and_f() {
        let frame = labelled_frame();
        let idx = LeafIndex::new(&frame);
        let a1 = frame.schema().parse_combination("a=a1").unwrap();
        let (v, f) = idx.sums(&frame, &a1);
        assert!((v - 19.0).abs() < 1e-12);
        assert!((f - 9.0).abs() < 1e-12);
        let root = Combination::root(frame.schema());
        let (v, _) = idx.sums(&frame, &root);
        assert!((v - frame.total_v()).abs() < 1e-12);
    }

    #[test]
    fn empty_frame_is_handled() {
        let s = Schema::builder().attribute("a", ["a1"]).build().unwrap();
        let frame = LeafFrame::builder(&s).build();
        let idx = LeafIndex::new(&frame);
        let root = Combination::root(&s);
        assert_eq!(idx.support_count(&root), 0);
        assert_eq!(idx.confidence(&root), 0.0);
    }
}
