use std::collections::HashMap;

use crate::attr::ElementId;
use crate::combo::Combination;
use crate::cuboid::Cuboid;
use crate::frame::LeafFrame;

/// Aggregate the fundamental KPI of a frame up to one cuboid: group rows by
/// the cuboid's attributes and sum `v` and `f` (the paper's Fig. 4).
///
/// Only combinations with at least one covering row are returned, in
/// deterministic (sorted) order.
///
/// # Example
///
/// ```
/// use mdkpi::{Schema, LeafFrame, Cuboid, AttrId, aggregate};
///
/// # fn main() -> Result<(), mdkpi::Error> {
/// let schema = Schema::builder()
///     .attribute("a", ["a1", "a2"])
///     .attribute("b", ["b1", "b2"])
///     .build()?;
/// let mut b = LeafFrame::builder(&schema);
/// b.push_named(&[("a", "a1"), ("b", "b1")], 1.0, 2.0)?;
/// b.push_named(&[("a", "a1"), ("b", "b2")], 3.0, 4.0)?;
/// let frame = b.build();
/// let rows = aggregate(&frame, Cuboid::from_attrs([AttrId(0)]));
/// assert_eq!(rows.len(), 1);
/// assert_eq!(rows[0].1, 4.0); // v summed over (a1, *)
/// # Ok(())
/// # }
/// ```
pub fn aggregate(frame: &LeafFrame, cuboid: Cuboid) -> Vec<(Combination, f64, f64)> {
    let attrs: Vec<usize> = cuboid.attrs().map(|a| a.index()).collect();
    let mut groups: HashMap<Vec<ElementId>, (f64, f64)> = HashMap::new();
    for i in 0..frame.num_rows() {
        let row = frame.row_elements(i);
        let key: Vec<ElementId> = attrs.iter().map(|&a| row[a]).collect();
        let entry = groups.entry(key).or_insert((0.0, 0.0));
        entry.0 += frame.v(i);
        entry.1 += frame.f(i);
    }
    let mut out: Vec<(Combination, f64, f64)> = groups
        .into_iter()
        .map(|(key, (v, f))| {
            let combo =
                Combination::from_pairs(frame.schema(), cuboid.attrs().zip(key.iter().copied()));
            (combo, v, f)
        })
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Aggregate anomaly labels up to one cuboid: for each combination with at
/// least one covering row, return `(combination, support, anomalous_support)`
/// — the inputs of the paper's Criteria 2.
///
/// Unlabelled frames report `anomalous_support = 0` for every combination.
pub fn aggregate_labels(frame: &LeafFrame, cuboid: Cuboid) -> Vec<(Combination, usize, usize)> {
    let attrs: Vec<usize> = cuboid.attrs().map(|a| a.index()).collect();
    let mut groups: HashMap<Vec<ElementId>, (usize, usize)> = HashMap::new();
    for i in 0..frame.num_rows() {
        let row = frame.row_elements(i);
        let key: Vec<ElementId> = attrs.iter().map(|&a| row[a]).collect();
        let entry = groups.entry(key).or_insert((0, 0));
        entry.0 += 1;
        if frame.label(i) == Some(true) {
            entry.1 += 1;
        }
    }
    let mut out: Vec<(Combination, usize, usize)> = groups
        .into_iter()
        .map(|(key, (s, a))| {
            let combo =
                Combination::from_pairs(frame.schema(), cuboid.attrs().zip(key.iter().copied()));
            (combo, s, a)
        })
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// A derived KPI: a transformation `g(K₁ᶠ, …, Kₘᶠ)` of fundamental KPIs
/// (paper §III-A). Implementations must be pure functions of their inputs so
/// that deriving after aggregation is well-defined.
pub trait DerivedKpi {
    /// Human-readable name (e.g. `"cache_hit_ratio"`).
    fn name(&self) -> &str;

    /// Apply the transformation to aggregated fundamental values.
    ///
    /// `fundamentals` holds one value per fundamental KPI, in the order the
    /// implementation documents.
    fn derive(&self, fundamentals: &[f64]) -> f64;
}

/// The most common derived KPI: a guarded ratio `num / den` of two
/// fundamentals (success rate, cache-hit ratio, average delay, …).
///
/// # Example
///
/// ```
/// use mdkpi::{DerivedKpi, RatioKpi};
///
/// let hit_ratio = RatioKpi::new("cache_hit_ratio");
/// assert_eq!(hit_ratio.derive(&[30.0, 100.0]), 0.3);
/// assert_eq!(hit_ratio.derive(&[30.0, 0.0]), 0.0); // guarded
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatioKpi {
    name: String,
}

impl RatioKpi {
    /// Create a named ratio KPI over `[numerator, denominator]`.
    pub fn new(name: impl Into<String>) -> Self {
        RatioKpi { name: name.into() }
    }
}

impl DerivedKpi for RatioKpi {
    fn name(&self) -> &str {
        &self.name
    }

    /// # Panics
    ///
    /// Panics if fewer than two fundamentals are supplied.
    fn derive(&self, fundamentals: &[f64]) -> f64 {
        assert!(
            fundamentals.len() >= 2,
            "ratio kpi needs numerator and denominator"
        );
        let (num, den) = (fundamentals[0], fundamentals[1]);
        if den.abs() < f64::EPSILON {
            0.0
        } else {
            num / den
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrId, Schema};

    fn frame() -> LeafFrame {
        let s = Schema::builder()
            .attribute("a", ["a1", "a2"])
            .attribute("b", ["b1", "b2"])
            .build()
            .unwrap();
        let mut b = LeafFrame::builder(&s);
        b.push_labelled(&[ElementId(0), ElementId(0)], 1.0, 10.0, true);
        b.push_labelled(&[ElementId(0), ElementId(1)], 2.0, 20.0, true);
        b.push_labelled(&[ElementId(1), ElementId(0)], 4.0, 40.0, false);
        b.push_labelled(&[ElementId(1), ElementId(1)], 8.0, 80.0, false);
        b.build()
    }

    #[test]
    fn aggregation_conserves_totals() {
        let f = frame();
        for mask in 1u32..4 {
            let rows = aggregate(&f, Cuboid::from_mask(mask));
            let v: f64 = rows.iter().map(|r| r.1).sum();
            let fc: f64 = rows.iter().map(|r| r.2).sum();
            assert!(
                (v - f.total_v()).abs() < 1e-12,
                "v not conserved for mask {mask}"
            );
            assert!(
                (fc - f.total_f()).abs() < 1e-12,
                "f not conserved for mask {mask}"
            );
        }
    }

    #[test]
    fn aggregate_groups_correctly() {
        let f = frame();
        let rows = aggregate(&f, Cuboid::from_attrs([AttrId(0)]));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0.to_string(), "(a1, *)");
        assert_eq!(rows[0].1, 3.0);
        assert_eq!(rows[1].1, 12.0);
    }

    #[test]
    fn aggregate_labels_counts_support() {
        let f = frame();
        let rows = aggregate_labels(&f, Cuboid::from_attrs([AttrId(1)]));
        assert_eq!(rows.len(), 2);
        // (*, b1) covers rows 0 and 2; one anomalous
        assert_eq!(
            rows[0],
            (f.schema().parse_combination("b=b1").unwrap(), 2, 1)
        );
    }

    #[test]
    fn aggregate_full_cuboid_is_identity() {
        let f = frame();
        let rows = aggregate(&f, Cuboid::from_attrs([AttrId(0), AttrId(1)]));
        assert_eq!(rows.len(), f.num_rows());
        assert!(rows.iter().all(|(c, _, _)| c.is_leaf()));
    }

    #[test]
    fn ratio_kpi_guards_zero_denominator() {
        let k = RatioKpi::new("r");
        assert_eq!(k.name(), "r");
        assert_eq!(k.derive(&[1.0, 4.0]), 0.25);
        assert_eq!(k.derive(&[1.0, 0.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "numerator and denominator")]
    fn ratio_kpi_rejects_short_input() {
        RatioKpi::new("r").derive(&[1.0]);
    }
}
