use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::combo::Combination;
use crate::{Error, Result};

/// Maximum number of attributes a [`Schema`] supports (cuboids are `u32`
/// bitmasks).
pub(crate) const MAX_ATTRS: usize = 32;

/// Index of an attribute within a [`Schema`].
///
/// Attribute ids are dense: a schema with `n` attributes uses ids
/// `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub u16);

impl AttrId {
    /// The id as a `usize` for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "attr#{}", self.0)
    }
}

/// Index of an element (a concrete attribute value) within one attribute.
///
/// Element ids are dense per attribute: an attribute with `m` elements uses
/// ids `0..m`. Ids from different attributes are unrelated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ElementId(pub u32);

impl ElementId {
    /// The id as a `usize` for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "elem#{}", self.0)
    }
}

/// One attribute of a schema: a name plus its interned element values.
#[derive(Debug, Clone)]
pub struct AttributeDef {
    name: String,
    elements: Vec<String>,
    lookup: HashMap<String, ElementId>,
}

impl AttributeDef {
    fn new(name: String, elements: Vec<String>) -> Result<Self> {
        let mut lookup = HashMap::with_capacity(elements.len());
        for (i, e) in elements.iter().enumerate() {
            if lookup.insert(e.clone(), ElementId(i as u32)).is_some() {
                return Err(Error::DuplicateElement {
                    attribute: name,
                    element: e.clone(),
                });
            }
        }
        Ok(AttributeDef {
            name,
            elements,
            lookup,
        })
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of elements in this attribute (the paper's `l(attr)`).
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the attribute has zero elements (never true for attributes
    /// inside a built [`Schema`]).
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The name of the element with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds for this attribute.
    pub fn element_name(&self, id: ElementId) -> &str {
        &self.elements[id.index()]
    }

    /// Resolve an element by name.
    pub fn element(&self, name: &str) -> Option<ElementId> {
        self.lookup.get(name).copied()
    }

    /// Iterate over all element ids of this attribute.
    pub fn element_ids(&self) -> impl Iterator<Item = ElementId> + '_ {
        (0..self.elements.len() as u32).map(ElementId)
    }
}

/// An immutable attribute schema: the ordered list of attributes and their
/// interned elements.
///
/// A schema corresponds to the paper's `AttributeSet(S)` together with the
/// element sets `Elem(·)`. All combinations, frames and cuboids hold an
/// `Arc<Schema>` internally (cloning a schema handle is cheap).
///
/// # Example
///
/// ```
/// use mdkpi::Schema;
///
/// # fn main() -> Result<(), mdkpi::Error> {
/// let schema = Schema::builder()
///     .attribute("location", ["L1", "L2", "L3"])
///     .attribute("website", ["Site1", "Site2"])
///     .build()?;
/// assert_eq!(schema.num_attributes(), 2);
/// assert_eq!(schema.attribute_by_name("location").unwrap().len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Schema {
    inner: Arc<SchemaInner>,
}

#[derive(Debug)]
struct SchemaInner {
    attributes: Vec<AttributeDef>,
    by_name: HashMap<String, AttrId>,
}

impl Schema {
    /// Dump the schema as an ordered `(name, elements)` list — the
    /// loss-free interchange form [`Schema::from_parts`] accepts.
    pub fn to_parts(&self) -> Vec<(String, Vec<String>)> {
        self.inner
            .attributes
            .iter()
            .map(|attr| (attr.name.clone(), attr.elements.clone()))
            .collect()
    }

    /// Rebuild a schema from the list form written by
    /// [`Schema::to_parts`], re-running the builder's validation
    /// (duplicates, limits).
    ///
    /// # Errors
    ///
    /// Fails exactly as [`SchemaBuilder::build`] does.
    pub fn from_parts<N, E, S>(parts: impl IntoIterator<Item = (N, E)>) -> Result<Self>
    where
        N: Into<String>,
        E: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut builder = Schema::builder();
        for (name, elements) in parts {
            builder = builder.attribute(name.into(), elements.into_iter().map(Into::into));
        }
        builder.build()
    }
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        // Two handles to the same allocation are trivially equal; otherwise
        // compare structurally so that schemas deserialized twice compare
        // equal.
        Arc::ptr_eq(&self.inner, &other.inner)
            || (self.inner.attributes.len() == other.inner.attributes.len()
                && self
                    .inner
                    .attributes
                    .iter()
                    .zip(&other.inner.attributes)
                    .all(|(a, b)| a.name == b.name && a.elements == b.elements))
    }
}

impl Eq for Schema {}

impl Schema {
    /// Start building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder::new()
    }

    /// Number of attributes `n`.
    pub fn num_attributes(&self) -> usize {
        self.inner.attributes.len()
    }

    /// The attribute with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn attribute(&self, id: AttrId) -> &AttributeDef {
        &self.inner.attributes[id.index()]
    }

    /// Resolve an attribute by name.
    pub fn attribute_by_name(&self, name: &str) -> Option<&AttributeDef> {
        self.attr_id(name).map(|id| self.attribute(id))
    }

    /// Resolve an attribute id by name.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.inner.by_name.get(name).copied()
    }

    /// Iterate over all attribute ids in order.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> + 'static {
        let n = self.num_attributes() as u16;
        (0..n).map(AttrId)
    }

    /// Iterate over `(id, def)` pairs.
    pub fn attributes(&self) -> impl Iterator<Item = (AttrId, &AttributeDef)> {
        self.inner
            .attributes
            .iter()
            .enumerate()
            .map(|(i, d)| (AttrId(i as u16), d))
    }

    /// Total number of most-fine-grained attribute combinations
    /// (`l(A)·l(B)·…`), i.e. the size of the full cuboid `Cub_{A,B,…}`.
    ///
    /// Saturates at `u64::MAX` for pathological schemas.
    pub fn num_leaves(&self) -> u64 {
        self.inner
            .attributes
            .iter()
            .fold(1u64, |acc, a| acc.saturating_mul(a.len() as u64))
    }

    /// Resolve one `(attribute, element)` pair by names.
    pub fn resolve(&self, attribute: &str, element: &str) -> Result<(AttrId, ElementId)> {
        let attr = self
            .attr_id(attribute)
            .ok_or_else(|| Error::UnknownAttribute {
                name: attribute.to_string(),
            })?;
        let elem = self
            .attribute(attr)
            .element(element)
            .ok_or_else(|| Error::UnknownElement {
                attribute: attribute.to_string(),
                element: element.to_string(),
            })?;
        Ok((attr, elem))
    }

    /// Parse a combination from the textual `attr=elem&attr=elem` form.
    ///
    /// Attributes not mentioned are wildcards. The empty string parses to the
    /// root combination `(*, *, …)`.
    ///
    /// # Errors
    ///
    /// Returns an error if a pair is malformed, an attribute or element is
    /// unknown, or an attribute appears twice.
    ///
    /// ```
    /// use mdkpi::Schema;
    /// # fn main() -> Result<(), mdkpi::Error> {
    /// let schema = Schema::builder()
    ///     .attribute("location", ["L1", "L2"])
    ///     .attribute("os", ["android", "ios"])
    ///     .build()?;
    /// let c = schema.parse_combination("os=ios")?;
    /// assert_eq!(c.to_string(), "(*, ios)");
    /// # Ok(())
    /// # }
    /// ```
    pub fn parse_combination(&self, text: &str) -> Result<Combination> {
        Combination::parse(self, text)
    }

    pub(crate) fn same_as(&self, other: &Schema) -> bool {
        self == other
    }
}

/// Incremental builder for [`Schema`].
///
/// ```
/// use mdkpi::Schema;
/// # fn main() -> Result<(), mdkpi::Error> {
/// let schema = Schema::builder()
///     .attribute("a", ["a1", "a2"])
///     .attribute("b", ["b1"])
///     .build()?;
/// assert_eq!(schema.num_leaves(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    attributes: Vec<(String, Vec<String>)>,
}

impl SchemaBuilder {
    /// Create an empty builder (same as [`Schema::builder`]).
    pub fn new() -> Self {
        SchemaBuilder::default()
    }

    /// Add one attribute with its element values, in order.
    pub fn attribute<N, I, E>(mut self, name: N, elements: I) -> Self
    where
        N: Into<String>,
        I: IntoIterator<Item = E>,
        E: Into<String>,
    {
        self.attributes
            .push((name.into(), elements.into_iter().map(Into::into).collect()));
        self
    }

    /// Finish building the schema.
    ///
    /// # Errors
    ///
    /// Fails on duplicate attribute names, duplicate elements within one
    /// attribute, an empty schema / empty attribute, or more than 32
    /// attributes.
    pub fn build(self) -> Result<Schema> {
        if self.attributes.is_empty() || self.attributes.iter().any(|(_, e)| e.is_empty()) {
            return Err(Error::EmptySchema);
        }
        if self.attributes.len() > MAX_ATTRS {
            return Err(Error::TooManyAttributes {
                requested: self.attributes.len(),
            });
        }
        let mut by_name = HashMap::with_capacity(self.attributes.len());
        let mut attributes = Vec::with_capacity(self.attributes.len());
        for (i, (name, elements)) in self.attributes.into_iter().enumerate() {
            if by_name.insert(name.clone(), AttrId(i as u16)).is_some() {
                return Err(Error::DuplicateAttribute { name });
            }
            attributes.push(AttributeDef::new(name, elements)?);
        }
        Ok(Schema {
            inner: Arc::new(SchemaInner {
                attributes,
                by_name,
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::builder()
            .attribute("a", ["a1", "a2", "a3"])
            .attribute("b", ["b1", "b2"])
            .attribute("c", ["c1", "c2"])
            .build()
            .unwrap()
    }

    #[test]
    fn builds_and_resolves() {
        let s = abc();
        assert_eq!(s.num_attributes(), 3);
        assert_eq!(s.num_leaves(), 12);
        let (attr, elem) = s.resolve("b", "b2").unwrap();
        assert_eq!(attr, AttrId(1));
        assert_eq!(elem, ElementId(1));
        assert_eq!(s.attribute(attr).element_name(elem), "b2");
    }

    #[test]
    fn unknown_lookups_error() {
        let s = abc();
        assert!(matches!(
            s.resolve("zzz", "a1"),
            Err(Error::UnknownAttribute { .. })
        ));
        assert!(matches!(
            s.resolve("a", "zzz"),
            Err(Error::UnknownElement { .. })
        ));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = Schema::builder()
            .attribute("a", ["a1"])
            .attribute("a", ["a2"])
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::DuplicateAttribute { .. }));
    }

    #[test]
    fn duplicate_element_rejected() {
        let err = Schema::builder()
            .attribute("a", ["x", "x"])
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::DuplicateElement { .. }));
    }

    #[test]
    fn empty_schema_rejected() {
        assert!(matches!(Schema::builder().build(), Err(Error::EmptySchema)));
        assert!(matches!(
            Schema::builder()
                .attribute("a", Vec::<String>::new())
                .build(),
            Err(Error::EmptySchema)
        ));
    }

    #[test]
    fn too_many_attributes_rejected() {
        let mut b = Schema::builder();
        for i in 0..33 {
            b = b.attribute(format!("a{i}"), ["x"]);
        }
        assert!(matches!(
            b.build(),
            Err(Error::TooManyAttributes { requested: 33 })
        ));
    }

    #[test]
    fn schema_roundtrips_through_parts() {
        let s = abc();
        let parts = s.to_parts();
        let back = Schema::from_parts(parts).unwrap();
        assert_eq!(s, back);
        // the from_parts path re-runs builder validation
        assert!(Schema::from_parts([("a", vec!["x", "x"])]).is_err());
        let empty: Vec<(String, Vec<String>)> = Vec::new();
        assert!(Schema::from_parts(empty).is_err());
    }

    #[test]
    fn schema_equality_is_structural() {
        let s1 = abc();
        let s2 = abc();
        assert_eq!(s1, s2);
        let s3 = Schema::builder().attribute("a", ["a1"]).build().unwrap();
        assert_ne!(s1, s3);
    }

    #[test]
    fn clone_shares_allocation() {
        let s1 = abc();
        let s2 = s1.clone();
        assert!(Arc::ptr_eq(&s1.inner, &s2.inner));
    }

    #[test]
    fn num_leaves_saturates() {
        let mut b = Schema::builder();
        for i in 0..8 {
            let elems: Vec<String> = (0..1000).map(|j| format!("e{j}")).collect();
            b = b.attribute(format!("a{i}"), elems);
        }
        let s = b.build().unwrap();
        // 1000^8 > u64::MAX would overflow; 1000^8 = 10^24 saturates.
        assert_eq!(s.num_leaves(), u64::MAX);
    }

    #[test]
    fn element_ids_iterate_in_order() {
        let s = abc();
        let ids: Vec<u32> = s.attribute(AttrId(0)).element_ids().map(|e| e.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
