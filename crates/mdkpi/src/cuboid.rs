use std::fmt;

use crate::attr::{AttrId, ElementId, Schema};
use crate::combo::Combination;

/// A cuboid: a non-empty set of concrete attributes, one node of the lattice
/// in the paper's Fig. 2 (e.g. `Cub_{Location,Website}`).
///
/// Represented as a `u32` bitmask where bit *i* is the attribute with
/// [`AttrId`] *i*. The *layer* of a cuboid is its number of attributes.
///
/// # Example
///
/// ```
/// use mdkpi::{Cuboid, AttrId};
///
/// let c = Cuboid::from_attrs([AttrId(0), AttrId(3)]);
/// assert_eq!(c.layer(), 2);
/// assert!(c.contains(AttrId(3)));
/// assert_eq!(c.parent_cuboids().len(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cuboid(u32);

impl Cuboid {
    /// Build from a raw bitmask. Bit *i* means attribute *i* is concrete.
    pub fn from_mask(mask: u32) -> Self {
        Cuboid(mask)
    }

    /// Build from attribute ids.
    pub fn from_attrs<I: IntoIterator<Item = AttrId>>(attrs: I) -> Self {
        let mut mask = 0u32;
        for a in attrs {
            mask |= 1 << a.index();
        }
        Cuboid(mask)
    }

    /// The raw bitmask.
    pub fn mask(self) -> u32 {
        self.0
    }

    /// Number of attributes in this cuboid (its layer in Fig. 2, 1-based).
    pub fn layer(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the cuboid contains the attribute.
    pub fn contains(self, attr: AttrId) -> bool {
        self.0 & (1 << attr.index()) != 0
    }

    /// The attribute ids in this cuboid, ascending.
    pub fn attrs(self) -> impl Iterator<Item = AttrId> {
        let mask = self.0;
        (0..32u16).filter(move |i| mask & (1 << i) != 0).map(AttrId)
    }

    /// Cuboids one layer up: each attribute removed in turn.
    ///
    /// Layer-1 cuboids have no parents (the empty cuboid is not part of the
    /// lattice).
    pub fn parent_cuboids(self) -> Vec<Cuboid> {
        self.attrs()
            .map(|a| Cuboid(self.0 & !(1 << a.index())))
            .filter(|c| c.0 != 0)
            .collect()
    }

    /// Cuboids one layer down *within a universe* of allowed attributes: each
    /// absent universe attribute added in turn.
    pub fn child_cuboids(self, universe: Cuboid) -> Vec<Cuboid> {
        universe
            .attrs()
            .filter(|a| !self.contains(*a))
            .map(|a| Cuboid(self.0 | (1 << a.index())))
            .collect()
    }

    /// Number of attribute combinations in this cuboid for the given schema:
    /// `Π l(attr)` over the cuboid's attributes.
    pub fn num_combinations(self, schema: &Schema) -> u64 {
        self.attrs().fold(1u64, |acc, a| {
            acc.saturating_mul(schema.attribute(a).len() as u64)
        })
    }

    /// Iterate every attribute combination in this cuboid (the Cartesian
    /// product over its attributes, wildcards elsewhere).
    pub fn combinations(self, schema: &Schema) -> CuboidCombinations {
        let attrs: Vec<AttrId> = self.attrs().collect();
        let sizes: Vec<u32> = attrs
            .iter()
            .map(|a| schema.attribute(*a).len() as u32)
            .collect();
        CuboidCombinations {
            schema: schema.clone(),
            attrs,
            sizes,
            counters: None,
            done: false,
        }
    }
}

impl fmt::Display for Cuboid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cub{{")?;
        for (i, a) in self.attrs().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", a.0)?;
        }
        write!(f, "}}")
    }
}

/// Iterator over the attribute combinations of one cuboid, produced by
/// [`Cuboid::combinations`]. Yields combinations in lexicographic element-id
/// order.
pub struct CuboidCombinations {
    schema: Schema,
    attrs: Vec<AttrId>,
    sizes: Vec<u32>,
    counters: Option<Vec<u32>>,
    done: bool,
}

impl Iterator for CuboidCombinations {
    type Item = Combination;

    fn next(&mut self) -> Option<Combination> {
        if self.done {
            return None;
        }
        if self.sizes.contains(&0) {
            self.done = true;
            return None;
        }
        let counters = match &mut self.counters {
            Some(c) => {
                // advance odometer
                let mut i = c.len();
                loop {
                    if i == 0 {
                        self.done = true;
                        return None;
                    }
                    i -= 1;
                    c[i] += 1;
                    if c[i] < self.sizes[i] {
                        break;
                    }
                    c[i] = 0;
                }
                c.clone()
            }
            None => {
                let c = vec![0u32; self.attrs.len()];
                self.counters = Some(c.clone());
                if self.attrs.is_empty() {
                    self.done = true;
                }
                c
            }
        };
        Some(Combination::from_pairs(
            &self.schema,
            self.attrs
                .iter()
                .zip(&counters)
                .map(|(a, e)| (*a, ElementId(*e))),
        ))
    }
}

/// The full cuboid lattice over a set of attributes, organized by layer
/// (the paper's Fig. 2: `2^n − 1` cuboids in `n` layers).
///
/// # Example
///
/// ```
/// use mdkpi::{CuboidLattice, Cuboid, AttrId};
///
/// let lattice = CuboidLattice::over_attrs([AttrId(0), AttrId(1), AttrId(2), AttrId(3)]);
/// assert_eq!(lattice.num_cuboids(), 15); // 2^4 - 1
/// assert_eq!(lattice.layer(1).len(), 4);
/// assert_eq!(lattice.layer(2).len(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct CuboidLattice {
    universe: Cuboid,
    layers: Vec<Vec<Cuboid>>,
}

impl CuboidLattice {
    /// Lattice over every attribute of a schema.
    pub fn full(schema: &Schema) -> Self {
        CuboidLattice::over_attrs(schema.attr_ids())
    }

    /// Lattice over an arbitrary subset of attributes (e.g. the survivors of
    /// redundant-attribute deletion).
    pub fn over_attrs<I: IntoIterator<Item = AttrId>>(attrs: I) -> Self {
        let universe = Cuboid::from_attrs(attrs);
        let n = universe.layer();
        let mut layers: Vec<Vec<Cuboid>> = vec![Vec::new(); n];
        let attr_list: Vec<AttrId> = universe.attrs().collect();
        // Enumerate non-empty subsets of the universe.
        for subset in 1u32..(1u32 << attr_list.len()) {
            let cuboid = Cuboid::from_attrs(
                attr_list
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| subset & (1 << i) != 0)
                    .map(|(_, a)| *a),
            );
            layers[cuboid.layer() - 1].push(cuboid);
        }
        for l in &mut layers {
            l.sort();
        }
        CuboidLattice { universe, layers }
    }

    /// The universe cuboid (all attributes of this lattice).
    pub fn universe(&self) -> Cuboid {
        self.universe
    }

    /// Number of layers (= number of attributes).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total number of cuboids, `2^n − 1`.
    pub fn num_cuboids(&self) -> usize {
        self.layers.iter().map(Vec::len).sum()
    }

    /// The cuboids of one layer (1-based, as in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is 0 or exceeds [`CuboidLattice::num_layers`].
    pub fn layer(&self, layer: usize) -> &[Cuboid] {
        assert!(
            layer >= 1 && layer <= self.layers.len(),
            "layer {layer} out of range 1..={}",
            self.layers.len()
        );
        &self.layers[layer - 1]
    }

    /// Iterate `(layer, cuboid)` pairs top-down (layer 1 first), each layer
    /// in deterministic order.
    pub fn iter_top_down(&self) -> impl Iterator<Item = (usize, Cuboid)> + '_ {
        self.layers
            .iter()
            .enumerate()
            .flat_map(|(i, cs)| cs.iter().map(move |c| (i + 1, *c)))
    }
}

/// The paper's Eq. 2: the exact fraction of cuboids pruned by deleting `k`
/// of `n` attributes, `(2^n − 2^(n−k)) / (2^n − 1)`.
///
/// Table IV reports the lower bound `(2^k − 1)/2^k`; this function returns
/// the exact value, which exceeds the bound for every finite `n`.
///
/// # Panics
///
/// Panics if `k > n` or `n` is 0 or `n > 63`.
///
/// ```
/// use mdkpi::decrease_ratio;
/// assert!((decrease_ratio(4, 1) - (8.0 / 15.0)).abs() < 1e-12);
/// assert!(decrease_ratio(4, 1) > 0.5);
/// ```
pub fn decrease_ratio(n: u32, k: u32) -> f64 {
    assert!(n > 0 && n <= 63, "n must be in 1..=63");
    assert!(k <= n, "cannot delete more attributes than exist");
    let total = (1u64 << n) - 1;
    let remaining = (1u64 << (n - k)) - 1;
    (total - remaining) as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    fn schema() -> Schema {
        Schema::builder()
            .attribute("a", ["a1", "a2", "a3"])
            .attribute("b", ["b1", "b2"])
            .attribute("c", ["c1", "c2"])
            .build()
            .unwrap()
    }

    #[test]
    fn lattice_counts_match_paper() {
        // Fig. 2: 4 attributes -> 15 cuboids in 4 layers (4, 6, 4, 1).
        let l = CuboidLattice::over_attrs((0..4).map(AttrId));
        assert_eq!(l.num_cuboids(), 15);
        assert_eq!(l.layer(1).len(), 4);
        assert_eq!(l.layer(2).len(), 6);
        assert_eq!(l.layer(3).len(), 4);
        assert_eq!(l.layer(4).len(), 1);
    }

    #[test]
    fn lattice_over_subset() {
        let l = CuboidLattice::over_attrs([AttrId(1), AttrId(3)]);
        assert_eq!(l.num_cuboids(), 3);
        assert_eq!(l.layer(1).len(), 2);
        assert_eq!(l.layer(2), &[Cuboid::from_attrs([AttrId(1), AttrId(3)])]);
    }

    #[test]
    fn top_down_iteration_is_layer_ordered() {
        let l = CuboidLattice::over_attrs((0..3).map(AttrId));
        let layers: Vec<usize> = l.iter_top_down().map(|(layer, _)| layer).collect();
        assert_eq!(layers, vec![1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn cuboid_parents_and_children() {
        let universe = Cuboid::from_attrs((0..4).map(AttrId));
        let c = Cuboid::from_attrs([AttrId(0), AttrId(2)]);
        let parents = c.parent_cuboids();
        assert_eq!(parents.len(), 2);
        assert!(parents.iter().all(|p| p.layer() == 1));
        let children = c.child_cuboids(universe);
        assert_eq!(children.len(), 2);
        assert!(children.iter().all(|ch| ch.layer() == 3));
        // layer-1 cuboid has no parents
        assert!(Cuboid::from_attrs([AttrId(1)]).parent_cuboids().is_empty());
    }

    #[test]
    fn combinations_enumerate_cartesian_product() {
        let s = schema();
        // paper §II-B: Cub_{L,S} has l(L)*l(S) combinations
        let c = Cuboid::from_attrs([AttrId(0), AttrId(2)]);
        assert_eq!(c.num_combinations(&s), 6);
        let combos: Vec<Combination> = c.combinations(&s).collect();
        assert_eq!(combos.len(), 6);
        assert!(combos.iter().all(|c| c.layer() == 2));
        // all distinct
        let set: std::collections::HashSet<_> = combos.iter().cloned().collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn cdn_sized_cuboid_counts() {
        // Table I / §II-B: 33 * 4 * 4 * 20 = 10560 leaves; Cub_{L,S} = 660.
        let mut b = Schema::builder();
        b = b.attribute("location", (0..33).map(|i| format!("L{i}")));
        b = b.attribute("access", (0..4).map(|i| format!("A{i}")));
        b = b.attribute("os", (0..4).map(|i| format!("O{i}")));
        b = b.attribute("website", (0..20).map(|i| format!("S{i}")));
        let s = b.build().unwrap();
        assert_eq!(s.num_leaves(), 10560);
        let ls = Cuboid::from_attrs([AttrId(0), AttrId(3)]);
        assert_eq!(ls.num_combinations(&s), 660);
    }

    #[test]
    fn decrease_ratio_matches_table4_bounds() {
        // Table IV lower bounds (2^k - 1)/2^k for k = 1..=5.
        let bounds = [0.5, 0.75, 0.875, 0.9375, 0.96875];
        for (k, &bound) in (1u32..=5).zip(&bounds) {
            let exact = decrease_ratio(6, k);
            assert!(
                exact > bound,
                "k={k}: exact {exact} must beat bound {bound}"
            );
            assert!(exact <= 1.0);
        }
        // deleting everything prunes everything
        assert!((decrease_ratio(4, 4) - 1.0).abs() < 1e-12);
        // deleting nothing prunes nothing
        assert_eq!(decrease_ratio(4, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot delete more")]
    fn decrease_ratio_rejects_k_gt_n() {
        decrease_ratio(3, 4);
    }

    #[test]
    fn display_forms() {
        let c = Cuboid::from_attrs([AttrId(0), AttrId(2)]);
        assert_eq!(c.to_string(), "Cub{0,2}");
    }
}
