use std::fmt;

use crate::attr::{AttrId, ElementId, Schema};
use crate::combo::Combination;
use crate::{Error, Result};

/// The table of most-fine-grained attribute combinations at one timestamp:
/// per-row elements (one per attribute), actual value `v`, forecast value
/// `f`, and optionally an anomaly label.
///
/// This is the paper's Table III plus the per-leaf anomaly-detection result
/// that RAPMiner consumes (`[[a1, b1, c1, d1, anomalous], …]` in
/// Algorithm 1's input).
///
/// Rows are stored row-major, so matching a [`Combination`] against a row is
/// a contiguous slice comparison.
///
/// # Example
///
/// ```
/// use mdkpi::{Schema, LeafFrame};
///
/// # fn main() -> Result<(), mdkpi::Error> {
/// let schema = Schema::builder()
///     .attribute("a", ["a1", "a2"])
///     .attribute("b", ["b1", "b2"])
///     .build()?;
/// let mut builder = LeafFrame::builder(&schema);
/// builder.push_named(&[("a", "a1"), ("b", "b1")], 10.0, 5.0)?;
/// builder.push_named(&[("a", "a2"), ("b", "b2")], 23.0, 20.5)?;
/// let mut frame = builder.build();
/// frame.label_with(|v, f| (v - f).abs() / f.max(1e-9) > 0.5);
/// assert_eq!(frame.num_rows(), 2);
/// assert_eq!(frame.num_anomalous(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct LeafFrame {
    schema: Schema,
    /// Row-major element ids; stride = number of attributes.
    elements: Vec<ElementId>,
    v: Vec<f64>,
    f: Vec<f64>,
    labels: Option<Vec<bool>>,
}

impl LeafFrame {
    /// Start building a frame for the given schema.
    pub fn builder(schema: &Schema) -> LeafFrameBuilder {
        LeafFrameBuilder {
            frame: LeafFrame {
                schema: schema.clone(),
                elements: Vec::new(),
                v: Vec::new(),
                f: Vec::new(),
                labels: None,
            },
            labels: Vec::new(),
            any_label: false,
        }
    }

    /// The frame's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of leaf rows.
    pub fn num_rows(&self) -> usize {
        self.v.len()
    }

    /// Whether the frame has zero rows.
    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    /// The element ids of row `i`, in schema attribute order.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn row_elements(&self, i: usize) -> &[ElementId] {
        let n = self.schema.num_attributes();
        &self.elements[i * n..(i + 1) * n]
    }

    /// The actual KPI value of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn v(&self, i: usize) -> f64 {
        self.v[i]
    }

    /// The forecast KPI value of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn f(&self, i: usize) -> f64 {
        self.f[i]
    }

    /// All actual values, row order.
    pub fn v_slice(&self) -> &[f64] {
        &self.v
    }

    /// All forecast values, row order.
    pub fn f_slice(&self) -> &[f64] {
        &self.f
    }

    /// The anomaly label of row `i`, if labels have been attached.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn label(&self, i: usize) -> Option<bool> {
        self.labels.as_ref().map(|l| l[i])
    }

    /// All labels, if attached.
    pub fn labels(&self) -> Option<&[bool]> {
        self.labels.as_deref()
    }

    /// Attach anomaly labels (one per row).
    ///
    /// # Errors
    ///
    /// Returns [`Error::RowOutOfBounds`] if `labels.len()` differs from the
    /// row count.
    pub fn set_labels(&mut self, labels: Vec<bool>) -> Result<()> {
        if labels.len() != self.num_rows() {
            return Err(Error::RowOutOfBounds {
                row: labels.len(),
                len: self.num_rows(),
            });
        }
        self.labels = Some(labels);
        Ok(())
    }

    /// Label every row with a detector over `(v, f)`.
    pub fn label_with<D: FnMut(f64, f64) -> bool>(&mut self, mut detector: D) {
        let labels = self
            .v
            .iter()
            .zip(&self.f)
            .map(|(&v, &f)| detector(v, f))
            .collect();
        self.labels = Some(labels);
    }

    /// Number of rows labelled anomalous (0 when unlabelled).
    pub fn num_anomalous(&self) -> usize {
        self.labels
            .as_ref()
            .map_or(0, |l| l.iter().filter(|&&b| b).count())
    }

    /// Materialize row `i` as a [`Combination`] (always a leaf).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn combination(&self, i: usize) -> Combination {
        Combination::leaf(&self.schema, self.row_elements(i))
    }

    /// Iterate over row views.
    pub fn iter(&self) -> impl Iterator<Item = LeafRow<'_>> + '_ {
        (0..self.num_rows()).map(move |i| LeafRow {
            frame: self,
            row: i,
        })
    }

    /// Row indexes whose elements are covered by `combination` (linear scan;
    /// prefer [`crate::LeafIndex`] for repeated queries).
    pub fn rows_matching(&self, combination: &Combination) -> Vec<usize> {
        (0..self.num_rows())
            .filter(|&i| combination.matches_leaf(self.row_elements(i)))
            .collect()
    }

    /// Sum of `v` over all rows.
    pub fn total_v(&self) -> f64 {
        self.v.iter().sum()
    }

    /// Sum of `f` over all rows.
    pub fn total_f(&self) -> f64 {
        self.f.iter().sum()
    }
}

impl fmt::Debug for LeafFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LeafFrame")
            .field("rows", &self.num_rows())
            .field("attributes", &self.schema.num_attributes())
            .field("labelled", &self.labels.is_some())
            .field("anomalous", &self.num_anomalous())
            .finish()
    }
}

/// A borrowed view of one row of a [`LeafFrame`].
#[derive(Clone, Copy)]
pub struct LeafRow<'a> {
    frame: &'a LeafFrame,
    row: usize,
}

impl<'a> LeafRow<'a> {
    /// Row index within the frame.
    pub fn index(&self) -> usize {
        self.row
    }

    /// Element ids in schema order.
    pub fn elements(&self) -> &'a [ElementId] {
        self.frame.row_elements(self.row)
    }

    /// Actual value.
    pub fn v(&self) -> f64 {
        self.frame.v(self.row)
    }

    /// Forecast value.
    pub fn f(&self) -> f64 {
        self.frame.f(self.row)
    }

    /// Anomaly label, if the frame is labelled.
    pub fn label(&self) -> Option<bool> {
        self.frame.label(self.row)
    }
}

impl fmt::Debug for LeafRow<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LeafRow")
            .field("index", &self.row)
            .field("v", &self.v())
            .field("f", &self.f())
            .field("label", &self.label())
            .finish()
    }
}

/// Builder for [`LeafFrame`], created by [`LeafFrame::builder`].
#[derive(Debug)]
pub struct LeafFrameBuilder {
    frame: LeafFrame,
    labels: Vec<bool>,
    any_label: bool,
}

impl LeafFrameBuilder {
    /// Append one leaf row from raw element ids (schema order).
    ///
    /// # Panics
    ///
    /// Panics if `elements.len()` differs from the schema's attribute count
    /// or an element id is out of range for its attribute.
    pub fn push(&mut self, elements: &[ElementId], v: f64, f: f64) -> &mut Self {
        let schema = self.frame.schema.clone();
        assert_eq!(
            elements.len(),
            schema.num_attributes(),
            "row arity mismatch"
        );
        for (i, e) in elements.iter().enumerate() {
            assert!(
                e.index() < schema.attribute(AttrId(i as u16)).len(),
                "element {e} out of range for attribute {i}"
            );
        }
        self.frame.elements.extend_from_slice(elements);
        self.frame.v.push(v);
        self.frame.f.push(f);
        self.labels.push(false);
        self
    }

    /// Append one row with an anomaly label.
    ///
    /// # Panics
    ///
    /// Same as [`LeafFrameBuilder::push`].
    pub fn push_labelled(
        &mut self,
        elements: &[ElementId],
        v: f64,
        f: f64,
        anomalous: bool,
    ) -> &mut Self {
        self.push(elements, v, f);
        *self.labels.last_mut().expect("just pushed") = anomalous;
        self.any_label = true;
        self
    }

    /// Append one row resolving `(attribute, element)` names.
    ///
    /// # Errors
    ///
    /// Fails when a name does not resolve or an attribute is missing or
    /// duplicated.
    pub fn push_named(&mut self, pairs: &[(&str, &str)], v: f64, f: f64) -> Result<&mut Self> {
        let schema = self.frame.schema.clone();
        let mut elems: Vec<Option<ElementId>> = vec![None; schema.num_attributes()];
        for (attr, elem) in pairs {
            let (a, e) = schema.resolve(attr, elem)?;
            if elems[a.index()].replace(e).is_some() {
                return Err(Error::ParseCombination {
                    input: format!("{pairs:?}"),
                    reason: format!("attribute `{attr}` appears twice"),
                });
            }
        }
        let full: Vec<ElementId> = elems
            .into_iter()
            .enumerate()
            .map(|(i, e)| {
                e.ok_or_else(|| Error::ParseCombination {
                    input: format!("{pairs:?}"),
                    reason: format!(
                        "leaf row missing attribute `{}`",
                        schema.attribute(AttrId(i as u16)).name()
                    ),
                })
            })
            .collect::<Result<_>>()?;
        self.push(&full, v, f);
        Ok(self)
    }

    /// Number of rows appended so far.
    pub fn len(&self) -> usize {
        self.frame.num_rows()
    }

    /// Whether no rows were appended yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finish the frame. Labels are attached only if at least one row was
    /// pushed via [`LeafFrameBuilder::push_labelled`].
    pub fn build(mut self) -> LeafFrame {
        if self.any_label {
            self.frame.labels = Some(self.labels);
        }
        self.frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::builder()
            .attribute("a", ["a1", "a2"])
            .attribute("b", ["b1", "b2", "b3"])
            .build()
            .unwrap()
    }

    fn sample() -> LeafFrame {
        let s = schema();
        let mut b = LeafFrame::builder(&s);
        for (ai, bi, v, f) in [
            (0u32, 0u32, 10.0, 5.0),
            (0, 1, 8.0, 8.2),
            (0, 2, 4.0, 2.0),
            (1, 0, 7.0, 7.1),
            (1, 1, 3.0, 3.0),
        ] {
            b.push(&[ElementId(ai), ElementId(bi)], v, f);
        }
        b.build()
    }

    #[test]
    fn builder_and_accessors() {
        let f = sample();
        assert_eq!(f.num_rows(), 5);
        assert_eq!(f.v(0), 10.0);
        assert_eq!(f.f(1), 8.2);
        assert_eq!(f.row_elements(2), &[ElementId(0), ElementId(2)]);
        assert!(f.labels().is_none());
        assert_eq!(f.num_anomalous(), 0);
        assert!((f.total_v() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn label_with_detector() {
        let mut f = sample();
        f.label_with(|v, fc| (v - fc).abs() / fc.max(1e-9) > 0.5);
        // rows 0 (10 vs 5) and 2 (4 vs 2) deviate by 100%
        assert_eq!(f.labels().unwrap(), &[true, false, true, false, false]);
        assert_eq!(f.num_anomalous(), 2);
    }

    #[test]
    fn set_labels_validates_length() {
        let mut f = sample();
        assert!(matches!(
            f.set_labels(vec![true; 3]),
            Err(Error::RowOutOfBounds { .. })
        ));
        f.set_labels(vec![false, true, false, false, true]).unwrap();
        assert_eq!(f.num_anomalous(), 2);
    }

    #[test]
    fn push_named_resolves_and_validates() {
        let s = schema();
        let mut b = LeafFrame::builder(&s);
        b.push_named(&[("b", "b3"), ("a", "a2")], 1.0, 2.0).unwrap();
        let err = b.push_named(&[("a", "a1")], 1.0, 2.0).unwrap_err();
        assert!(matches!(err, Error::ParseCombination { .. }));
        let err = b
            .push_named(&[("a", "a1"), ("a", "a2"), ("b", "b1")], 1.0, 2.0)
            .unwrap_err();
        assert!(matches!(err, Error::ParseCombination { .. }));
        let f = b.build();
        assert_eq!(f.combination(0).to_string(), "(a2, b3)");
    }

    #[test]
    fn push_labelled_attaches_labels() {
        let s = schema();
        let mut b = LeafFrame::builder(&s);
        b.push_labelled(&[ElementId(0), ElementId(0)], 1.0, 1.0, true);
        b.push_labelled(&[ElementId(1), ElementId(1)], 1.0, 1.0, false);
        let f = b.build();
        assert_eq!(f.labels().unwrap(), &[true, false]);
    }

    #[test]
    fn rows_matching_combination() {
        let f = sample();
        let c = f.schema().parse_combination("a=a1").unwrap();
        assert_eq!(f.rows_matching(&c), vec![0, 1, 2]);
        let c = f.schema().parse_combination("b=b1").unwrap();
        assert_eq!(f.rows_matching(&c), vec![0, 3]);
        let root = Combination::root(f.schema());
        assert_eq!(f.rows_matching(&root).len(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_rejects_bad_element() {
        let s = schema();
        let mut b = LeafFrame::builder(&s);
        b.push(&[ElementId(5), ElementId(0)], 1.0, 1.0);
    }

    #[test]
    fn iter_rows() {
        let f = sample();
        let vs: Vec<f64> = f.iter().map(|r| r.v()).collect();
        assert_eq!(vs, vec![10.0, 8.0, 4.0, 7.0, 3.0]);
        let r = f.iter().nth(2).unwrap();
        assert_eq!(r.index(), 2);
        assert!(r.label().is_none());
    }

    #[test]
    fn debug_is_informative() {
        let f = sample();
        let dbg = format!("{f:?}");
        assert!(dbg.contains("rows: 5"));
    }
}
