use std::collections::HashMap;
use std::io::{Read, Write};

use crate::attr::Schema;
use crate::frame::LeafFrame;
use crate::{Error, Result};

/// Column names with special meaning in the CSV layout (everything else is
/// an attribute column). This mirrors the published Squeeze dataset files,
/// which use `real` and `predict` value columns.
const REAL_COL: &str = "real";
const PREDICT_COL: &str = "predict";
const LABEL_COL: &str = "label";

/// Read a [`LeafFrame`] from CSV, inferring the schema from the file.
///
/// Expected layout: one column per attribute (any names except `real`,
/// `predict`, `label`), a `real` column (actual value `v`), a `predict`
/// column (forecast `f`), and optionally a `label` column (`0`/`1` or
/// `true`/`false`). Attribute order and element interning follow first
/// appearance in the file, so reading is deterministic for a given file.
///
/// # Errors
///
/// Fails on missing value columns, unparsable or non-finite numbers
/// (NaN/±inf are rejected with [`Error::NonFiniteValue`] naming the row),
/// bad labels, and malformed CSV.
///
/// # Example
///
/// ```
/// use mdkpi::read_frame_csv;
///
/// # fn main() -> Result<(), mdkpi::Error> {
/// let data = "\
/// location,website,real,predict,label
/// L1,Site1,10.0,5.0,1
/// L1,Site2,7.0,7.1,0
/// ";
/// let frame = read_frame_csv(data.as_bytes())?;
/// assert_eq!(frame.num_rows(), 2);
/// assert_eq!(frame.num_anomalous(), 1);
/// # Ok(())
/// # }
/// ```
pub fn read_frame_csv<R: Read>(reader: R) -> Result<LeafFrame> {
    let mut rdr = csv::Reader::from_reader(reader);
    let headers = rdr.headers()?.clone();
    let mut attr_cols: Vec<(usize, String)> = Vec::new();
    let mut real_col = None;
    let mut predict_col = None;
    let mut label_col = None;
    for (i, h) in headers.iter().enumerate() {
        match h {
            REAL_COL => real_col = Some(i),
            PREDICT_COL => predict_col = Some(i),
            LABEL_COL => label_col = Some(i),
            other => attr_cols.push((i, other.to_string())),
        }
    }
    let real_col = real_col.ok_or_else(|| Error::Csv {
        message: format!("missing `{REAL_COL}` column"),
    })?;
    let predict_col = predict_col.ok_or_else(|| Error::Csv {
        message: format!("missing `{PREDICT_COL}` column"),
    })?;
    if attr_cols.is_empty() {
        return Err(Error::Csv {
            message: "no attribute columns".to_string(),
        });
    }

    // First pass: collect the records and intern elements in order of
    // appearance.
    struct Parsed {
        elements: Vec<String>,
        v: f64,
        f: f64,
        label: Option<bool>,
    }
    let mut element_sets: Vec<Vec<String>> = vec![Vec::new(); attr_cols.len()];
    let mut seen: Vec<HashMap<String, ()>> = vec![HashMap::new(); attr_cols.len()];
    let mut rows: Vec<Parsed> = Vec::new();
    for (line, record) in rdr.records().enumerate() {
        let record = record?;
        let get = |col: usize| -> Result<&str> {
            record.get(col).ok_or_else(|| Error::Csv {
                message: format!("row {line}: missing column {col}"),
            })
        };
        let parse_num = |col: usize, name: &str| -> Result<f64> {
            let s = get(col)?;
            let v = s.trim().parse::<f64>().map_err(|_| Error::Csv {
                message: format!("row {line}: `{name}` value `{s}` is not a number"),
            })?;
            // `str::parse::<f64>` happily accepts "NaN" and "inf"; such
            // values would flow into deviation/CP math and poison every
            // comparison downstream, so name the row and reject here.
            if !v.is_finite() {
                return Err(Error::NonFiniteValue {
                    row: line,
                    column: name.to_string(),
                    value: v,
                });
            }
            Ok(v)
        };
        let mut elements = Vec::with_capacity(attr_cols.len());
        for (ai, (col, _)) in attr_cols.iter().enumerate() {
            let value = get(*col)?.trim().to_string();
            if !seen[ai].contains_key(&value) {
                seen[ai].insert(value.clone(), ());
                element_sets[ai].push(value.clone());
            }
            elements.push(value);
        }
        let v = parse_num(real_col, REAL_COL)?;
        let f = parse_num(predict_col, PREDICT_COL)?;
        let label = match label_col {
            None => None,
            Some(col) => {
                let s = get(col)?.trim();
                Some(match s {
                    "1" | "true" | "True" | "TRUE" => true,
                    "0" | "false" | "False" | "FALSE" => false,
                    other => {
                        return Err(Error::Csv {
                            message: format!("row {line}: bad label `{other}`"),
                        })
                    }
                })
            }
        };
        rows.push(Parsed {
            elements,
            v,
            f,
            label,
        });
    }

    let mut schema_builder = Schema::builder();
    for ((_, name), elems) in attr_cols.iter().zip(element_sets) {
        schema_builder = schema_builder.attribute(name.clone(), elems);
    }
    let schema = schema_builder.build()?;

    let mut builder = LeafFrame::builder(&schema);
    let mut labels: Vec<bool> = Vec::with_capacity(rows.len());
    let labelled = label_col.is_some();
    for row in &rows {
        let pairs: Vec<(&str, &str)> = attr_cols
            .iter()
            .zip(&row.elements)
            .map(|((_, name), value)| (name.as_str(), value.as_str()))
            .collect();
        builder.push_named(&pairs, row.v, row.f)?;
        labels.push(row.label.unwrap_or(false));
    }
    let mut frame = builder.build();
    if labelled {
        frame.set_labels(labels)?;
    }
    Ok(frame)
}

/// Write a [`LeafFrame`] to CSV in the layout read by [`read_frame_csv`].
/// The `label` column is emitted only when the frame is labelled.
///
/// # Errors
///
/// Propagates I/O and CSV serialization failures.
pub fn write_frame_csv<W: Write>(frame: &LeafFrame, writer: W) -> Result<()> {
    let schema = frame.schema();
    let mut wtr = csv::Writer::from_writer(writer);
    let mut header: Vec<&str> = schema.attributes().map(|(_, def)| def.name()).collect();
    header.push(REAL_COL);
    header.push(PREDICT_COL);
    let labelled = frame.labels().is_some();
    if labelled {
        header.push(LABEL_COL);
    }
    wtr.write_record(&header)?;
    for i in 0..frame.num_rows() {
        let mut record: Vec<String> = frame
            .row_elements(i)
            .iter()
            .enumerate()
            .map(|(a, e)| {
                schema
                    .attribute(crate::AttrId(a as u16))
                    .element_name(*e)
                    .to_string()
            })
            .collect();
        record.push(format!("{}", frame.v(i)));
        record.push(format!("{}", frame.f(i)));
        if labelled {
            record.push(
                if frame.label(i) == Some(true) {
                    "1"
                } else {
                    "0"
                }
                .to_string(),
            );
        }
        wtr.write_record(&record)?;
    }
    wtr.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_csv() -> &'static str {
        "a,b,real,predict,label\n\
         a1,b1,10.0,5.0,1\n\
         a1,b2,8.0,8.2,0\n\
         a2,b1,7.0,7.1,0\n"
    }

    #[test]
    fn read_infers_schema_and_labels() {
        let frame = read_frame_csv(sample_csv().as_bytes()).unwrap();
        assert_eq!(frame.num_rows(), 3);
        assert_eq!(frame.schema().num_attributes(), 2);
        assert_eq!(frame.schema().attribute_by_name("a").unwrap().len(), 2);
        assert_eq!(frame.num_anomalous(), 1);
        assert_eq!(frame.combination(0).to_string(), "(a1, b1)");
        assert_eq!(frame.v(0), 10.0);
        assert_eq!(frame.f(1), 8.2);
    }

    #[test]
    fn roundtrip_preserves_frame() {
        let frame = read_frame_csv(sample_csv().as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_frame_csv(&frame, &mut buf).unwrap();
        let back = read_frame_csv(buf.as_slice()).unwrap();
        assert_eq!(back.num_rows(), frame.num_rows());
        assert_eq!(back.labels(), frame.labels());
        for i in 0..frame.num_rows() {
            assert_eq!(back.v(i), frame.v(i));
            assert_eq!(back.f(i), frame.f(i));
            assert_eq!(
                back.combination(i).to_string(),
                frame.combination(i).to_string()
            );
        }
    }

    #[test]
    fn unlabelled_files_have_no_labels() {
        let csv = "a,real,predict\na1,1.0,1.0\n";
        let frame = read_frame_csv(csv.as_bytes()).unwrap();
        assert!(frame.labels().is_none());
        let mut buf = Vec::new();
        write_frame_csv(&frame, &mut buf).unwrap();
        assert!(!String::from_utf8(buf).unwrap().contains("label"));
    }

    #[test]
    fn missing_value_columns_error() {
        let err = read_frame_csv("a,predict\na1,1.0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("real"));
        let err = read_frame_csv("a,real\na1,1.0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("predict"));
        let err = read_frame_csv("real,predict\n1.0,1.0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("no attribute"));
    }

    #[test]
    fn bad_numbers_and_labels_error() {
        let err = read_frame_csv("a,real,predict\na1,xx,1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("not a number"));
        let err = read_frame_csv("a,real,predict,label\na1,1,1,maybe\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad label"));
    }

    #[test]
    fn non_finite_values_are_rejected_with_the_row() {
        for (body, col) in [
            ("a,real,predict\na1,1,1\na2,NaN,1\n", "real"),
            ("a,real,predict\na1,inf,1\n", "real"),
            ("a,real,predict\na1,1,-inf\n", "predict"),
        ] {
            let err = read_frame_csv(body.as_bytes()).unwrap_err();
            match &err {
                Error::NonFiniteValue { row, column, value } => {
                    let expected_row = body.lines().count() - 2; // last data row
                    assert_eq!(*row, expected_row);
                    assert_eq!(column, col);
                    assert!(!value.is_finite());
                }
                other => panic!("expected NonFiniteValue, got {other:?}"),
            }
            let msg = err.to_string();
            assert!(msg.contains("not finite"), "message was `{msg}`");
            assert!(msg.contains(col), "message was `{msg}`");
        }
    }

    #[test]
    fn label_spellings_accepted() {
        let csv = "a,real,predict,label\na1,1,1,true\na2,1,1,FALSE\n";
        let frame = read_frame_csv(csv.as_bytes()).unwrap();
        assert_eq!(frame.labels().unwrap(), &[true, false]);
    }
}
