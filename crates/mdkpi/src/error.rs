use std::fmt;

/// Errors produced by the `mdkpi` data model.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// An attribute name was not found in the schema.
    UnknownAttribute {
        /// The attribute name that failed to resolve.
        name: String,
    },
    /// An element value was not found within the given attribute.
    UnknownElement {
        /// The attribute the element was looked up in.
        attribute: String,
        /// The element value that failed to resolve.
        element: String,
    },
    /// A duplicate attribute name was given to the schema builder.
    DuplicateAttribute {
        /// The attribute name that was declared twice.
        name: String,
    },
    /// A duplicate element was given within one attribute.
    DuplicateElement {
        /// The attribute the element was declared in.
        attribute: String,
        /// The element value that was declared twice.
        element: String,
    },
    /// A schema was built with zero attributes or an attribute with zero
    /// elements.
    EmptySchema,
    /// Too many attributes for the bitmask representation (maximum is 32).
    TooManyAttributes {
        /// The number of attributes requested.
        requested: usize,
    },
    /// A combination string could not be parsed.
    ParseCombination {
        /// The offending input.
        input: String,
        /// Human-readable reason.
        reason: String,
    },
    /// Two values that must share a schema were built from different schemas.
    SchemaMismatch,
    /// A frame operation referenced a row index out of bounds.
    RowOutOfBounds {
        /// The requested row.
        row: usize,
        /// The number of rows in the frame.
        len: usize,
    },
    /// A CSV file had an unexpected shape.
    Csv {
        /// Human-readable description of the problem.
        message: String,
    },
    /// A value column held NaN or ±infinity, which would poison every
    /// downstream deviation and CP computation.
    NonFiniteValue {
        /// Zero-based data row index (excluding the header).
        row: usize,
        /// Name of the offending column (`real` or `predict`).
        column: String,
        /// The parsed non-finite value.
        value: f64,
    },
    /// Underlying I/O error.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownAttribute { name } => write!(f, "unknown attribute `{name}`"),
            Error::UnknownElement { attribute, element } => {
                write!(f, "unknown element `{element}` in attribute `{attribute}`")
            }
            Error::DuplicateAttribute { name } => write!(f, "duplicate attribute `{name}`"),
            Error::DuplicateElement { attribute, element } => {
                write!(
                    f,
                    "duplicate element `{element}` in attribute `{attribute}`"
                )
            }
            Error::EmptySchema => write!(
                f,
                "schema must have at least one attribute and every attribute at least one element"
            ),
            Error::TooManyAttributes { requested } => {
                write!(f, "schemas support at most 32 attributes, got {requested}")
            }
            Error::ParseCombination { input, reason } => {
                write!(f, "cannot parse combination `{input}`: {reason}")
            }
            Error::SchemaMismatch => write!(f, "values were built from different schemas"),
            Error::RowOutOfBounds { row, len } => {
                write!(f, "row index {row} out of bounds for frame of {len} rows")
            }
            Error::Csv { message } => write!(f, "malformed csv: {message}"),
            Error::NonFiniteValue { row, column, value } => {
                write!(f, "row {row}: `{column}` value `{value}` is not finite")
            }
            Error::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<csv::Error> for Error {
    fn from(e: csv::Error) -> Self {
        Error::Csv {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = Error::UnknownAttribute {
            name: "os".to_string(),
        };
        let s = e.to_string();
        assert!(s.starts_with("unknown attribute"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn io_error_source_is_preserved() {
        use std::error::Error as _;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = Error::from(io);
        assert!(e.source().is_some());
    }
}
