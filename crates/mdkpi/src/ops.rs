//! Frame operations: filtering, projection and concatenation of
//! [`LeafFrame`]s — the data wrangling a real deployment does between
//! collection and localization (slicing an export to one website, merging
//! shards from several collectors, dropping zero-traffic leaves).

use crate::attr::AttrId;
use crate::combo::Combination;
use crate::frame::LeafFrame;
use crate::{Error, Result};

impl LeafFrame {
    /// A new frame containing only the rows covered by `scope` (labels are
    /// carried over). Narrowing to a known scope before localization is the
    /// manual drill-down the paper's Fig. 1 operators perform.
    ///
    /// ```
    /// use mdkpi::{Schema, LeafFrame};
    /// # fn main() -> Result<(), mdkpi::Error> {
    /// let schema = Schema::builder()
    ///     .attribute("a", ["a1", "a2"])
    ///     .attribute("b", ["b1", "b2"])
    ///     .build()?;
    /// let mut builder = LeafFrame::builder(&schema);
    /// builder.push_named(&[("a", "a1"), ("b", "b1")], 1.0, 1.0)?;
    /// builder.push_named(&[("a", "a2"), ("b", "b1")], 2.0, 2.0)?;
    /// let frame = builder.build();
    /// let scope = schema.parse_combination("a=a1")?;
    /// assert_eq!(frame.filter_scope(&scope).num_rows(), 1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn filter_scope(&self, scope: &Combination) -> LeafFrame {
        self.filter_rows(|i| scope.matches_leaf(self.row_elements(i)))
    }

    /// A new frame containing only the rows for which `keep` returns true
    /// (labels carried over).
    pub fn filter_rows<P: FnMut(usize) -> bool>(&self, mut keep: P) -> LeafFrame {
        let mut builder = LeafFrame::builder(self.schema());
        let mut labels = Vec::new();
        for i in 0..self.num_rows() {
            if keep(i) {
                builder.push(self.row_elements(i), self.v(i), self.f(i));
                labels.push(self.label(i).unwrap_or(false));
            }
        }
        let mut out = builder.build();
        if self.labels().is_some() {
            out.set_labels(labels).expect("built alongside rows");
        }
        out
    }

    /// Drop rows whose actual *and* forecast values are (near) zero —
    /// the "dead leaves" of sparse fine-grained CDN exports, which carry no
    /// signal but inflate support counts.
    pub fn drop_empty_leaves(&self) -> LeafFrame {
        self.filter_rows(|i| self.v(i).abs() > 1e-12 || self.f(i).abs() > 1e-12)
    }

    /// Concatenate frames row-wise (e.g. shards from several collectors).
    /// Labels are preserved when *every* input is labelled, dropped
    /// otherwise.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::SchemaMismatch`] when the frames disagree on the
    /// schema, and [`Error::EmptySchema`] when `frames` is empty.
    pub fn concat(frames: &[&LeafFrame]) -> Result<LeafFrame> {
        let first = frames.first().ok_or(Error::EmptySchema)?;
        let schema = first.schema();
        if frames.iter().any(|f| f.schema() != schema) {
            return Err(Error::SchemaMismatch);
        }
        let mut builder = LeafFrame::builder(schema);
        let all_labelled = frames.iter().all(|f| f.labels().is_some());
        let mut labels = Vec::new();
        for frame in frames {
            for i in 0..frame.num_rows() {
                builder.push(frame.row_elements(i), frame.v(i), frame.f(i));
                labels.push(frame.label(i).unwrap_or(false));
            }
        }
        let mut out = builder.build();
        if all_labelled {
            out.set_labels(labels).expect("built alongside rows");
        }
        Ok(out)
    }

    /// The fraction of this frame's total actual value carried by the rows
    /// covered by `scope` — the operator's "how much traffic is in this
    /// slice?" question.
    pub fn scope_share(&self, scope: &Combination) -> f64 {
        let total = self.total_v();
        if total.abs() < 1e-12 {
            return 0.0;
        }
        let covered: f64 = (0..self.num_rows())
            .filter(|&i| scope.matches_leaf(self.row_elements(i)))
            .map(|i| self.v(i))
            .sum();
        covered / total
    }

    /// Distinct elements of one attribute that actually occur in the frame
    /// (sparse exports rarely cover an attribute's full element set).
    ///
    /// # Panics
    ///
    /// Panics if `attr` is out of bounds.
    pub fn occurring_elements(&self, attr: AttrId) -> Vec<crate::ElementId> {
        let mut seen = vec![false; self.schema().attribute(attr).len()];
        for i in 0..self.num_rows() {
            seen[self.row_elements(i)[attr.index()].index()] = true;
        }
        seen.iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(e, _)| crate::ElementId(e as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ElementId, Schema};

    fn frame() -> LeafFrame {
        let schema = Schema::builder()
            .attribute("a", ["a1", "a2"])
            .attribute("b", ["b1", "b2", "b3"])
            .build()
            .unwrap();
        let mut builder = LeafFrame::builder(&schema);
        builder.push_labelled(&[ElementId(0), ElementId(0)], 10.0, 5.0, true);
        builder.push_labelled(&[ElementId(0), ElementId(1)], 0.0, 0.0, false);
        builder.push_labelled(&[ElementId(1), ElementId(0)], 30.0, 30.0, false);
        builder.push_labelled(&[ElementId(1), ElementId(2)], 60.0, 60.0, false);
        builder.build()
    }

    #[test]
    fn filter_scope_keeps_covered_rows_and_labels() {
        let f = frame();
        let scope = f.schema().parse_combination("a=a1").unwrap();
        let g = f.filter_scope(&scope);
        assert_eq!(g.num_rows(), 2);
        assert_eq!(g.labels().unwrap(), &[true, false]);
        // unlabelled input stays unlabelled
        let mut unlabelled_builder = LeafFrame::builder(f.schema());
        unlabelled_builder.push(&[ElementId(0), ElementId(0)], 1.0, 1.0);
        let u = unlabelled_builder.build().filter_scope(&scope);
        assert!(u.labels().is_none());
    }

    #[test]
    fn drop_empty_leaves_removes_dead_rows() {
        let f = frame();
        let g = f.drop_empty_leaves();
        assert_eq!(g.num_rows(), 3);
        assert!(g.v_slice().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn concat_merges_shards() {
        let f = frame();
        let scope1 = f.schema().parse_combination("a=a1").unwrap();
        let scope2 = f.schema().parse_combination("a=a2").unwrap();
        let (s1, s2) = (f.filter_scope(&scope1), f.filter_scope(&scope2));
        let merged = LeafFrame::concat(&[&s1, &s2]).unwrap();
        assert_eq!(merged.num_rows(), f.num_rows());
        assert_eq!(merged.num_anomalous(), f.num_anomalous());
        assert!((merged.total_v() - f.total_v()).abs() < 1e-12);
    }

    #[test]
    fn concat_validates_inputs() {
        assert!(matches!(LeafFrame::concat(&[]), Err(Error::EmptySchema)));
        let f = frame();
        let other_schema = Schema::builder().attribute("x", ["x1"]).build().unwrap();
        let mut b = LeafFrame::builder(&other_schema);
        b.push(&[ElementId(0)], 1.0, 1.0);
        let g = b.build();
        assert!(matches!(
            LeafFrame::concat(&[&f, &g]),
            Err(Error::SchemaMismatch)
        ));
    }

    #[test]
    fn concat_drops_labels_when_any_input_unlabelled() {
        let f = frame();
        let mut b = LeafFrame::builder(f.schema());
        b.push(&[ElementId(1), ElementId(1)], 5.0, 5.0);
        let unlabelled = b.build();
        let merged = LeafFrame::concat(&[&f, &unlabelled]).unwrap();
        assert!(merged.labels().is_none());
    }

    #[test]
    fn scope_share_sums_covered_traffic() {
        let f = frame();
        let scope = f.schema().parse_combination("a=a2").unwrap();
        assert!((f.scope_share(&scope) - 0.9).abs() < 1e-12);
        let root = Combination::root(f.schema());
        assert!((f.scope_share(&root) - 1.0).abs() < 1e-12);
        let empty = LeafFrame::builder(f.schema()).build();
        assert_eq!(empty.scope_share(&root), 0.0);
    }

    #[test]
    fn occurring_elements_reflects_sparsity() {
        let f = frame();
        let b_attr = f.schema().attr_id("b").unwrap();
        let occurring = f.occurring_elements(b_attr);
        // b2 appears only in the dead row, which still counts as occurring
        assert_eq!(occurring.len(), 3);
        let g = f.drop_empty_leaves();
        assert_eq!(g.occurring_elements(b_attr).len(), 2);
    }
}
