use std::fmt;

/// A fixed-capacity bitset over row indexes.
///
/// `Bitset` backs the inverted index ([`crate::LeafIndex`]): each
/// `(attribute, element)` pair owns one bitset of matching leaf rows, and
/// evaluating the paper's `support_count(ac)` is a word-wise AND over the
/// postings of the concrete elements of `ac`.
///
/// # Example
///
/// ```
/// use mdkpi::Bitset;
///
/// let mut a = Bitset::new(130);
/// a.insert(0);
/// a.insert(129);
/// let mut b = Bitset::new(130);
/// b.insert(129);
/// assert_eq!(a.intersection_count(&b), 1);
/// assert_eq!(a.count(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bitset {
    words: Vec<u64>,
    len: usize,
}

impl Bitset {
    /// Create an empty bitset with capacity for `len` bits (all zero).
    pub fn new(len: usize) -> Self {
        Bitset {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Create a bitset of `len` bits, all set.
    pub fn all_set(len: usize) -> Self {
        let mut s = Bitset {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        s.clear_tail();
        s
    }

    /// Number of bits this set can hold.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the capacity is zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit {i} out of bounds for bitset of {} bits",
            self.len
        );
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clear bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit {i} out of bounds for bitset of {} bits",
            self.len
        );
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Test bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit {i} out of bounds for bitset of {} bits",
            self.len
        );
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bit is set.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `|self ∩ other|` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different capacities.
    pub fn intersection_count(&self, other: &Bitset) -> usize {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// In-place intersection: `self &= other`.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different capacities.
    pub fn intersect_with(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union: `self |= other`.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different capacities.
    pub fn union_with(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place difference: `self &= !other`.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different capacities.
    pub fn subtract(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Whether every set bit of `self` is also set in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different capacities.
    pub fn is_subset_of(&self, other: &Bitset) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterate over the indexes of set bits in ascending order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl fmt::Debug for Bitset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Bitset")
            .field("len", &self.len)
            .field("ones", &self.iter_ones().collect::<Vec<_>>())
            .finish()
    }
}

impl FromIterator<usize> for Bitset {
    /// Collect row indexes into a bitset sized to the maximum index + 1.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let len = items.iter().max().map_or(0, |m| m + 1);
        let mut s = Bitset::new(len);
        for i in items {
            s.insert(i);
        }
        s
    }
}

/// Iterator over set bits of a [`Bitset`], produced by
/// [`Bitset::iter_ones`].
pub struct IterOnes<'a> {
    set: &'a Bitset,
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = Bitset::new(100);
        assert!(!s.contains(63));
        s.insert(63);
        s.insert(64);
        s.insert(99);
        assert!(s.contains(63));
        assert!(s.contains(64));
        assert!(s.contains(99));
        assert_eq!(s.count(), 3);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn insert_out_of_bounds_panics() {
        let mut s = Bitset::new(10);
        s.insert(10);
    }

    #[test]
    fn all_set_clears_tail_bits() {
        let s = Bitset::all_set(70);
        assert_eq!(s.count(), 70);
        let s = Bitset::all_set(64);
        assert_eq!(s.count(), 64);
        let s = Bitset::all_set(0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn set_algebra() {
        let mut a = Bitset::new(200);
        let mut b = Bitset::new(200);
        for i in (0..200).step_by(2) {
            a.insert(i);
        }
        for i in (0..200).step_by(3) {
            b.insert(i);
        }
        // multiples of 6 in [0, 200): 34 values
        assert_eq!(a.intersection_count(&b), 34);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 100 + 67 - 34);
        let mut d = a.clone();
        d.subtract(&b);
        assert_eq!(d.count(), 100 - 34);
        assert!(d.is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
    }

    #[test]
    fn iter_ones_ascending() {
        let mut s = Bitset::new(300);
        let idx = [0usize, 1, 63, 64, 128, 255, 299];
        for &i in &idx {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter_ones().collect();
        assert_eq!(got, idx);
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let s: Bitset = [3usize, 7, 7, 0].into_iter().collect();
        assert_eq!(s.len(), 8);
        assert_eq!(s.count(), 3);
        let empty: Bitset = std::iter::empty::<usize>().collect();
        assert_eq!(empty.len(), 0);
        assert!(empty.is_zero());
    }

    #[test]
    fn debug_is_nonempty() {
        let s = Bitset::new(4);
        assert!(!format!("{s:?}").is_empty());
    }
}
