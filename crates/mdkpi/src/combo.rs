use std::fmt;
use std::hash::{Hash, Hasher};

use crate::attr::{AttrId, ElementId, Schema};
use crate::cuboid::Cuboid;
use crate::{Error, Result};

/// An attribute combination: one concrete element or a wildcard (`*`) per
/// attribute.
///
/// This is the paper's `ac`. A combination with no wildcards is a *leaf*
/// (most-fine-grained combination, an element of `Cub_{A,B,C,D}`); the
/// all-wildcard combination is the *root* covering the whole impacted scope.
///
/// Combinations carry their [`Schema`] handle, so they can display themselves
/// with element names and validate operations. Equality and hashing consider
/// only the cells; combining values from different schemas is a logic error
/// caught by debug assertions.
///
/// # Example
///
/// ```
/// use mdkpi::{Schema, Combination};
///
/// # fn main() -> Result<(), mdkpi::Error> {
/// let schema = Schema::builder()
///     .attribute("location", ["L1", "L2"])
///     .attribute("access", ["wireless", "fixed"])
///     .attribute("website", ["Site1", "Site2"])
///     .build()?;
/// let rap = schema.parse_combination("location=L1&website=Site1")?;
/// let leaf = schema.parse_combination("location=L1&access=fixed&website=Site1")?;
/// assert!(rap.is_ancestor_of(&leaf));
/// assert_eq!(rap.layer(), 2);
/// assert_eq!(rap.parents().len(), 2);
/// assert_eq!(rap.to_string(), "(L1, *, Site1)");
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Combination {
    schema: Schema,
    cells: Box<[Option<ElementId>]>,
}

impl Combination {
    /// The all-wildcard combination `(*, *, …)`.
    pub fn root(schema: &Schema) -> Self {
        Combination {
            schema: schema.clone(),
            cells: vec![None; schema.num_attributes()].into_boxed_slice(),
        }
    }

    /// Build from `(attribute, element)` pairs; unmentioned attributes are
    /// wildcards.
    ///
    /// # Panics
    ///
    /// Panics if an attribute id is out of bounds for the schema.
    pub fn from_pairs<I>(schema: &Schema, pairs: I) -> Self
    where
        I: IntoIterator<Item = (AttrId, ElementId)>,
    {
        let mut c = Combination::root(schema);
        for (a, e) in pairs {
            c.cells[a.index()] = Some(e);
        }
        c
    }

    /// Build a leaf from one element per attribute, in schema order.
    ///
    /// # Panics
    ///
    /// Panics if `elements.len()` differs from the schema's attribute count.
    pub fn leaf(schema: &Schema, elements: &[ElementId]) -> Self {
        assert_eq!(
            elements.len(),
            schema.num_attributes(),
            "leaf requires one element per attribute"
        );
        Combination {
            schema: schema.clone(),
            cells: elements.iter().copied().map(Some).collect(),
        }
    }

    /// Parse the `attr=elem&attr=elem` textual form (see
    /// [`Schema::parse_combination`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ParseCombination`] on malformed pairs or duplicate
    /// attributes, and name-resolution errors for unknown names.
    pub fn parse(schema: &Schema, text: &str) -> Result<Self> {
        let mut c = Combination::root(schema);
        let trimmed = text.trim();
        if trimmed.is_empty() {
            return Ok(c);
        }
        for pair in trimmed.split('&') {
            let (attr, elem) = pair
                .split_once('=')
                .ok_or_else(|| Error::ParseCombination {
                    input: text.to_string(),
                    reason: format!("pair `{pair}` lacks `=`"),
                })?;
            let (a, e) = schema.resolve(attr.trim(), elem.trim())?;
            if c.cells[a.index()].is_some() {
                return Err(Error::ParseCombination {
                    input: text.to_string(),
                    reason: format!("attribute `{}` appears twice", attr.trim()),
                });
            }
            c.cells[a.index()] = Some(e);
        }
        Ok(c)
    }

    /// The schema this combination was built from.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The cell for one attribute: `Some(element)` or `None` for `*`.
    ///
    /// # Panics
    ///
    /// Panics if `attr` is out of bounds.
    #[inline]
    pub fn get(&self, attr: AttrId) -> Option<ElementId> {
        self.cells[attr.index()]
    }

    /// A copy with one cell replaced.
    ///
    /// # Panics
    ///
    /// Panics if `attr` is out of bounds.
    pub fn with_cell(&self, attr: AttrId, value: Option<ElementId>) -> Self {
        let mut c = self.clone();
        c.cells[attr.index()] = value;
        c
    }

    /// Cells in schema order.
    pub fn cells(&self) -> &[Option<ElementId>] {
        &self.cells
    }

    /// The cuboid this combination belongs to (the set of its concrete
    /// attributes).
    pub fn cuboid(&self) -> Cuboid {
        let mut mask = 0u32;
        for (i, c) in self.cells.iter().enumerate() {
            if c.is_some() {
                mask |= 1 << i;
            }
        }
        Cuboid::from_mask(mask)
    }

    /// Number of concrete (non-wildcard) attributes: the layer of the cuboid
    /// lattice this combination lives in (paper's `Layer`, 1-based for
    /// non-root combinations).
    pub fn layer(&self) -> usize {
        self.cells.iter().filter(|c| c.is_some()).count()
    }

    /// Whether every attribute is concrete (an element of the paper's
    /// `Cub_{A,B,…}` full cuboid).
    pub fn is_leaf(&self) -> bool {
        self.cells.iter().all(Option::is_some)
    }

    /// Whether every attribute is a wildcard.
    pub fn is_root(&self) -> bool {
        self.cells.iter().all(Option::is_none)
    }

    /// Whether `self` is at least as general as `other`: every concrete cell
    /// of `self` equals the corresponding cell of `other`.
    ///
    /// `a.generalizes(b)` is the reflexive closure of "ancestor of".
    pub fn generalizes(&self, other: &Combination) -> bool {
        debug_assert!(self.schema.same_as(&other.schema), "schema mismatch");
        self.cells
            .iter()
            .zip(other.cells.iter())
            .all(|(s, o)| match s {
                None => true,
                Some(_) => s == o,
            })
    }

    /// Strict ancestor test: more general than `other` and not equal.
    ///
    /// This matches the paper's `Parents(ac)`/`Descendants(ac)` relation
    /// transitively: `(L1, *, *, Site1)` is an ancestor of
    /// `(L1, wireless, *, Site1)` and of every leaf under it.
    pub fn is_ancestor_of(&self, other: &Combination) -> bool {
        self != other && self.generalizes(other)
    }

    /// Strict descendant test (inverse of [`Combination::is_ancestor_of`]).
    pub fn is_descendant_of(&self, other: &Combination) -> bool {
        other.is_ancestor_of(self)
    }

    /// Whether a leaf row (one element per attribute, schema order) is
    /// covered by this combination.
    ///
    /// # Panics
    ///
    /// Panics if `leaf.len()` differs from the schema's attribute count.
    #[inline]
    pub fn matches_leaf(&self, leaf: &[ElementId]) -> bool {
        assert_eq!(leaf.len(), self.cells.len(), "leaf arity mismatch");
        self.cells
            .iter()
            .zip(leaf)
            .all(|(c, l)| c.is_none_or(|e| e == *l))
    }

    /// The direct parents: each concrete cell replaced by a wildcard, one at
    /// a time (paper's `Parents(ac)`).
    ///
    /// The root combination has no parents.
    pub fn parents(&self) -> Vec<Combination> {
        self.cells
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                c.map(|_| {
                    let mut p = self.clone();
                    p.cells[i] = None;
                    p
                })
            })
            .collect()
    }

    /// The direct children: each wildcard cell instantiated with every
    /// element of that attribute.
    ///
    /// Leaves have no children. The number of children is
    /// `Σ l(attr)` over wildcard attributes, so use judiciously on wide
    /// schemas.
    pub fn children(&self) -> Vec<Combination> {
        let mut out = Vec::new();
        for (i, c) in self.cells.iter().enumerate() {
            if c.is_none() {
                let attr = self.schema.attribute(AttrId(i as u16));
                for e in attr.element_ids() {
                    let mut child = self.clone();
                    child.cells[i] = Some(e);
                    out.push(child);
                }
            }
        }
        out
    }

    /// Render as the `attr=elem&attr=elem` specification string
    /// (round-trips through [`Combination::parse`]); the root renders as the
    /// empty string.
    pub fn to_spec_string(&self) -> String {
        let mut parts = Vec::new();
        for (i, c) in self.cells.iter().enumerate() {
            if let Some(e) = c {
                let attr = self.schema.attribute(AttrId(i as u16));
                parts.push(format!("{}={}", attr.name(), attr.element_name(*e)));
            }
        }
        parts.join("&")
    }
}

impl PartialEq for Combination {
    fn eq(&self, other: &Self) -> bool {
        debug_assert!(self.schema.same_as(&other.schema), "schema mismatch");
        self.cells == other.cells
    }
}

impl Eq for Combination {}

impl Hash for Combination {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.cells.hash(state);
    }
}

impl PartialOrd for Combination {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Combination {
    /// Lexicographic order over cells; wildcards sort before concrete
    /// elements. This gives a deterministic total order for stable output,
    /// not a semantic one (use [`Combination::generalizes`] for the
    /// specificity partial order).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        debug_assert!(self.schema.same_as(&other.schema), "schema mismatch");
        for (a, b) in self.cells.iter().zip(other.cells.iter()) {
            let ord = match (a, b) {
                (None, None) => std::cmp::Ordering::Equal,
                (None, Some(_)) => std::cmp::Ordering::Less,
                (Some(_), None) => std::cmp::Ordering::Greater,
                (Some(x), Some(y)) => x.cmp(y),
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    }
}

impl fmt::Display for Combination {
    /// Renders like the paper: `(L1, *, *, Site1)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match c {
                None => write!(f, "*")?,
                Some(e) => {
                    let attr = self.schema.attribute(AttrId(i as u16));
                    write!(f, "{}", attr.element_name(*e))?;
                }
            }
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Combination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Combination{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::builder()
            .attribute("a", ["a1", "a2", "a3"])
            .attribute("b", ["b1", "b2"])
            .attribute("c", ["c1", "c2"])
            .build()
            .unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let s = schema();
        let c = s.parse_combination("a=a2&c=c1").unwrap();
        assert_eq!(c.to_string(), "(a2, *, c1)");
        assert_eq!(c.to_spec_string(), "a=a2&c=c1");
        let back = s.parse_combination(&c.to_spec_string()).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn parse_rejects_malformed() {
        let s = schema();
        assert!(matches!(
            s.parse_combination("a=a1&broken"),
            Err(Error::ParseCombination { .. })
        ));
        assert!(matches!(
            s.parse_combination("a=a1&a=a2"),
            Err(Error::ParseCombination { .. })
        ));
        assert!(s.parse_combination("a=zzz").is_err());
    }

    #[test]
    fn empty_parses_to_root() {
        let s = schema();
        let c = s.parse_combination("  ").unwrap();
        assert!(c.is_root());
        assert_eq!(c.to_spec_string(), "");
        assert_eq!(c, s.parse_combination(&c.to_spec_string()).unwrap());
    }

    #[test]
    fn layer_and_cuboid() {
        let s = schema();
        let c = s.parse_combination("a=a1&c=c2").unwrap();
        assert_eq!(c.layer(), 2);
        assert_eq!(c.cuboid().mask(), 0b101);
        assert!(!c.is_leaf());
        assert!(!c.is_root());
        let leaf = s.parse_combination("a=a1&b=b1&c=c1").unwrap();
        assert!(leaf.is_leaf());
        assert_eq!(leaf.layer(), 3);
    }

    #[test]
    fn ancestry() {
        let s = schema();
        let rap = s.parse_combination("a=a1").unwrap();
        let mid = s.parse_combination("a=a1&b=b2").unwrap();
        let leaf = s.parse_combination("a=a1&b=b2&c=c1").unwrap();
        let other = s.parse_combination("a=a2").unwrap();
        assert!(rap.is_ancestor_of(&mid));
        assert!(rap.is_ancestor_of(&leaf));
        assert!(mid.is_ancestor_of(&leaf));
        assert!(leaf.is_descendant_of(&rap));
        assert!(!rap.is_ancestor_of(&rap)); // strict
        assert!(rap.generalizes(&rap)); // reflexive
        assert!(!rap.is_ancestor_of(&other));
        assert!(!other.is_ancestor_of(&rap));
        assert!(Combination::root(&s).is_ancestor_of(&rap));
    }

    #[test]
    fn parents_replace_one_concrete_cell() {
        let s = schema();
        let c = s.parse_combination("a=a1&b=b2").unwrap();
        let ps = c.parents();
        assert_eq!(ps.len(), 2);
        assert!(ps.iter().all(|p| p.is_ancestor_of(&c)));
        assert!(ps.iter().all(|p| p.layer() == 1));
        assert!(Combination::root(&s).parents().is_empty());
    }

    #[test]
    fn children_instantiate_wildcards() {
        let s = schema();
        let c = s.parse_combination("b=b1").unwrap();
        // wildcard attrs: a (3 elements) + c (2 elements)
        let ch = c.children();
        assert_eq!(ch.len(), 5);
        assert!(ch.iter().all(|k| c.is_ancestor_of(k)));
        let leaf = s.parse_combination("a=a1&b=b1&c=c1").unwrap();
        assert!(leaf.children().is_empty());
    }

    #[test]
    fn matches_leaf_rows() {
        let s = schema();
        let c = s.parse_combination("a=a2").unwrap();
        assert!(c.matches_leaf(&[ElementId(1), ElementId(0), ElementId(1)]));
        assert!(!c.matches_leaf(&[ElementId(0), ElementId(0), ElementId(1)]));
        assert!(Combination::root(&s).matches_leaf(&[ElementId(2), ElementId(1), ElementId(0)]));
    }

    #[test]
    fn ordering_is_total_and_deterministic() {
        let s = schema();
        let mut v = [
            s.parse_combination("a=a2").unwrap(),
            s.parse_combination("").unwrap(),
            s.parse_combination("a=a1&b=b1").unwrap(),
            s.parse_combination("a=a1").unwrap(),
        ];
        v.sort();
        let shown: Vec<String> = v.iter().map(|c| c.to_string()).collect();
        assert_eq!(
            shown,
            vec!["(*, *, *)", "(a1, *, *)", "(a1, b1, *)", "(a2, *, *)"]
        );
    }

    #[test]
    fn hash_matches_eq() {
        use std::collections::HashSet;
        let s = schema();
        let mut set = HashSet::new();
        set.insert(s.parse_combination("a=a1").unwrap());
        set.insert(s.parse_combination("a=a1").unwrap());
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn from_pairs_and_leaf_constructors() {
        let s = schema();
        let c = Combination::from_pairs(&s, [(AttrId(2), ElementId(1))]);
        assert_eq!(c.to_string(), "(*, *, c2)");
        let l = Combination::leaf(&s, &[ElementId(0), ElementId(1), ElementId(0)]);
        assert_eq!(l.to_string(), "(a1, b2, c1)");
        assert!(l.is_leaf());
    }
}
