//! Property-based tests for the mdkpi data model invariants.

use mdkpi::{
    aggregate, decrease_ratio, Bitset, Combination, CuboidLattice, ElementId, LeafFrame, LeafIndex,
    Schema,
};
use proptest::prelude::*;

/// Strategy: a small random schema (1..=4 attributes, 1..=4 elements each).
fn schema_strategy() -> impl Strategy<Value = Schema> {
    prop::collection::vec(1usize..=4, 1..=4).prop_map(|sizes| {
        let mut b = Schema::builder();
        for (i, n) in sizes.iter().enumerate() {
            b = b.attribute(format!("attr{i}"), (0..*n).map(|j| format!("e{i}_{j}")));
        }
        b.build().expect("valid schema")
    })
}

/// Strategy: a schema plus a random combination in it.
fn schema_and_combination() -> impl Strategy<Value = (Schema, Combination)> {
    schema_strategy().prop_flat_map(|schema| {
        let n = schema.num_attributes();
        let cells: Vec<_> = (0..n)
            .map(|i| {
                let len = schema.attribute(mdkpi::AttrId(i as u16)).len() as u32;
                prop::option::of(0..len)
            })
            .collect();
        (Just(schema), cells).prop_map(|(schema, cells)| {
            let combo = Combination::from_pairs(
                &schema,
                cells
                    .iter()
                    .enumerate()
                    .filter_map(|(i, c)| c.map(|e| (mdkpi::AttrId(i as u16), ElementId(e)))),
            );
            (schema, combo)
        })
    })
}

/// Strategy: a schema plus a labelled frame with random rows.
fn schema_and_frame() -> impl Strategy<Value = (Schema, LeafFrame)> {
    schema_strategy().prop_flat_map(|schema| {
        let n = schema.num_attributes();
        let sizes: Vec<u32> = (0..n)
            .map(|i| schema.attribute(mdkpi::AttrId(i as u16)).len() as u32)
            .collect();
        let row = (
            sizes
                .iter()
                .map(|&s| (0..s).boxed())
                .collect::<Vec<BoxedStrategy<u32>>>(),
            0.0f64..100.0,
            0.1f64..100.0,
            any::<bool>(),
        );
        (Just(schema), prop::collection::vec(row, 0..40)).prop_map(|(schema, rows)| {
            let mut b = LeafFrame::builder(&schema);
            for (elems, v, f, label) in rows {
                let elems: Vec<ElementId> = elems.into_iter().map(ElementId).collect();
                b.push_labelled(&elems, v, f, label);
            }
            let frame = b.build();
            (schema, frame)
        })
    })
}

proptest! {
    /// Every parent of a combination is a strict ancestor, one layer up.
    #[test]
    fn parents_are_strict_ancestors((_, combo) in schema_and_combination()) {
        for p in combo.parents() {
            prop_assert!(p.is_ancestor_of(&combo));
            prop_assert!(combo.is_descendant_of(&p));
            prop_assert_eq!(p.layer() + 1, combo.layer());
        }
    }

    /// `generalizes` is a partial order: reflexive and antisymmetric.
    #[test]
    fn generalizes_is_partial_order((schema, combo) in schema_and_combination()) {
        prop_assert!(combo.generalizes(&combo));
        let root = Combination::root(&schema);
        prop_assert!(root.generalizes(&combo));
        if root.generalizes(&combo) && combo.generalizes(&root) {
            prop_assert_eq!(&combo, &root);
        }
    }

    /// Spec-string rendering round-trips through parsing.
    #[test]
    fn spec_string_roundtrips((schema, combo) in schema_and_combination()) {
        let text = combo.to_spec_string();
        let back = Combination::parse(&schema, &text).expect("roundtrip parse");
        prop_assert_eq!(combo, back);
    }

    /// The cuboid lattice over n attributes has exactly 2^n - 1 cuboids and
    /// binomial(n, k) cuboids in layer k.
    #[test]
    fn lattice_counts(n in 1usize..=6) {
        let lattice = CuboidLattice::over_attrs((0..n as u16).map(mdkpi::AttrId));
        prop_assert_eq!(lattice.num_cuboids(), (1 << n) - 1);
        let mut binom = 1usize;
        for k in 1..=n {
            binom = binom * (n - k + 1) / k;
            prop_assert_eq!(lattice.layer(k).len(), binom);
        }
    }

    /// decrease_ratio is monotone in k and always beats the paper's
    /// Table IV lower bound (2^k - 1) / 2^k for k >= 1.
    #[test]
    fn decrease_ratio_bounds(n in 1u32..=20, k_frac in 0.0f64..=1.0) {
        let k = ((n as f64) * k_frac).floor() as u32;
        let r = decrease_ratio(n, k);
        prop_assert!((0.0..=1.0).contains(&r));
        if k >= 1 {
            let bound = ((1u64 << k) - 1) as f64 / (1u64 << k) as f64;
            prop_assert!(r > bound - 1e-12);
        }
        if k < n {
            prop_assert!(decrease_ratio(n, k + 1) >= r);
        }
    }

    /// Aggregating any cuboid conserves the totals of v and f.
    #[test]
    fn aggregation_conserves((schema, frame) in schema_and_frame()) {
        let lattice = CuboidLattice::full(&schema);
        for (_, cuboid) in lattice.iter_top_down() {
            let rows = aggregate(&frame, cuboid);
            let v: f64 = rows.iter().map(|r| r.1).sum();
            let f: f64 = rows.iter().map(|r| r.2).sum();
            prop_assert!((v - frame.total_v()).abs() < 1e-6);
            prop_assert!((f - frame.total_f()).abs() < 1e-6);
        }
    }

    /// The inverted index agrees with a linear scan for support counting.
    #[test]
    fn index_agrees_with_scan((schema, frame) in schema_and_frame()) {
        let index = LeafIndex::new(&frame);
        let lattice = CuboidLattice::full(&schema);
        for (_, cuboid) in lattice.iter_top_down().take(8) {
            for combo in cuboid.combinations(&schema).take(16) {
                let scan = frame.rows_matching(&combo);
                prop_assert_eq!(index.support_count(&combo), scan.len());
                let anom_scan = scan
                    .iter()
                    .filter(|&&i| frame.label(i) == Some(true))
                    .count();
                prop_assert_eq!(index.support_count_anomalous(&combo), anom_scan);
            }
        }
    }

    /// Confidence is always within [0, 1] and equals the scan ratio.
    #[test]
    fn confidence_in_unit_interval((schema, frame) in schema_and_frame()) {
        let index = LeafIndex::new(&frame);
        let root = Combination::root(&schema);
        let c = index.confidence(&root);
        prop_assert!((0.0..=1.0).contains(&c));
        if frame.num_rows() > 0 {
            let expected = frame.num_anomalous() as f64 / frame.num_rows() as f64;
            prop_assert!((c - expected).abs() < 1e-12);
        }
    }

    /// Bitset algebra: |a ∩ b| + |a \ b| = |a| and subset relations hold.
    #[test]
    fn bitset_algebra(
        len in 1usize..=300,
        xs in prop::collection::vec(any::<prop::sample::Index>(), 0..64),
        ys in prop::collection::vec(any::<prop::sample::Index>(), 0..64),
    ) {
        let mut a = Bitset::new(len);
        let mut b = Bitset::new(len);
        for x in &xs { a.insert(x.index(len)); }
        for y in &ys { b.insert(y.index(len)); }
        let inter = a.intersection_count(&b);
        let mut diff = a.clone();
        diff.subtract(&b);
        prop_assert_eq!(inter + diff.count(), a.count());
        let mut union = a.clone();
        union.union_with(&b);
        prop_assert!(a.is_subset_of(&union));
        prop_assert!(b.is_subset_of(&union));
        prop_assert_eq!(union.count(), a.count() + b.count() - inter);
    }

    /// A cuboid's combination iterator yields exactly num_combinations
    /// distinct combinations, all in that cuboid.
    #[test]
    fn cuboid_enumeration_complete((schema, combo) in schema_and_combination()) {
        let cuboid = combo.cuboid();
        if cuboid.mask() == 0 {
            return Ok(()); // root: not a lattice cuboid
        }
        let combos: Vec<Combination> = cuboid.combinations(&schema).collect();
        prop_assert_eq!(combos.len() as u64, cuboid.num_combinations(&schema));
        let distinct: std::collections::HashSet<_> = combos.iter().cloned().collect();
        prop_assert_eq!(distinct.len(), combos.len());
        prop_assert!(combos.iter().all(|c| c.cuboid() == cuboid));
        prop_assert!(combos.contains(&combo));
    }

    /// Writing a frame to CSV and reading it back preserves rows, values and
    /// labels.
    #[test]
    fn csv_roundtrip((_, frame) in schema_and_frame()) {
        if frame.num_rows() == 0 {
            return Ok(()); // empty CSV has no schema to infer
        }
        let mut buf = Vec::new();
        mdkpi::write_frame_csv(&frame, &mut buf).expect("write");
        let back = mdkpi::read_frame_csv(buf.as_slice()).expect("read");
        prop_assert_eq!(back.num_rows(), frame.num_rows());
        prop_assert_eq!(back.num_anomalous(), frame.num_anomalous());
        for i in 0..frame.num_rows() {
            prop_assert_eq!(
                back.combination(i).to_string(),
                frame.combination(i).to_string()
            );
            prop_assert!((back.v(i) - frame.v(i)).abs() < 1e-9);
            prop_assert!((back.f(i) - frame.f(i)).abs() < 1e-9);
        }
    }
}
