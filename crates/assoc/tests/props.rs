//! Property tests: FP-growth and Apriori are independently implemented and
//! must agree; classic frequent-itemset laws must hold.

use assoc::{generate_rules, Apriori, FpGrowth};
use proptest::prelude::*;
use std::collections::HashMap;

fn transactions() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(0u8..12, 0..8), 0..40)
}

proptest! {
    /// The two miners agree exactly on arbitrary inputs.
    #[test]
    fn fp_growth_equals_apriori(txs in transactions(), min_support in 1usize..6) {
        let fp = FpGrowth::new(min_support).mine(&txs);
        let ap = Apriori::new(min_support).mine(&txs);
        prop_assert_eq!(fp, ap);
    }

    /// Every reported support is exact (verified by brute-force recount)
    /// and respects min_support.
    #[test]
    fn supports_are_exact(txs in transactions(), min_support in 1usize..4) {
        let sets = FpGrowth::new(min_support).mine(&txs);
        for s in &sets {
            let brute = txs
                .iter()
                .filter(|t| s.items.iter().all(|i| t.contains(i)))
                .count();
            prop_assert_eq!(s.support, brute, "itemset {:?}", s.items);
            prop_assert!(s.support >= min_support);
        }
    }

    /// Anti-monotonicity: a subset's support is at least its superset's.
    #[test]
    fn support_is_antimonotone(txs in transactions()) {
        let sets = FpGrowth::new(1).mine(&txs);
        let lookup: HashMap<&[u8], usize> =
            sets.iter().map(|s| (s.items.as_slice(), s.support)).collect();
        for s in &sets {
            for skip in 0..s.items.len() {
                if s.items.len() < 2 { continue; }
                let sub: Vec<u8> = s
                    .items
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != skip)
                    .map(|(_, &x)| x)
                    .collect();
                prop_assert!(lookup[sub.as_slice()] >= s.support);
            }
        }
    }

    /// Downward closure: every non-empty subset of a frequent itemset is
    /// itself in the output.
    #[test]
    fn downward_closure(txs in transactions(), min_support in 1usize..4) {
        let sets = FpGrowth::new(min_support).mine(&txs);
        let present: std::collections::HashSet<&[u8]> =
            sets.iter().map(|s| s.items.as_slice()).collect();
        for s in &sets {
            if s.items.len() < 2 { continue; }
            for skip in 0..s.items.len() {
                let sub: Vec<u8> = s
                    .items
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != skip)
                    .map(|(_, &x)| x)
                    .collect();
                prop_assert!(present.contains(sub.as_slice()),
                    "missing subset {sub:?} of {:?}", s.items);
            }
        }
    }

    /// Rule confidences are consistent with the itemset supports and lie in
    /// (0, 1].
    #[test]
    fn rule_confidence_is_consistent(txs in transactions(), min_support in 1usize..4) {
        let sets = FpGrowth::new(min_support).mine(&txs);
        let lookup: HashMap<&[u8], usize> =
            sets.iter().map(|s| (s.items.as_slice(), s.support)).collect();
        for r in generate_rules(&sets, 0.0) {
            prop_assert!(r.confidence > 0.0 && r.confidence <= 1.0);
            let ant = lookup[r.antecedent.as_slice()];
            prop_assert!((r.confidence - r.support as f64 / ant as f64).abs() < 1e-12);
        }
    }
}
