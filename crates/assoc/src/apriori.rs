use std::collections::{HashMap, HashSet};

use crate::{canonicalize, Item, ItemSet};

/// Level-wise Apriori frequent-itemset miner (Agrawal & Srikant, VLDB
/// 1994).
///
/// Kept alongside [`crate::FpGrowth`] as an independently implemented
/// oracle: both must produce identical output on any input, which the
/// property suite enforces. Apriori is simpler but slower on dense data —
/// the paper's remark that "the efficiency of different implementation
/// methods varies greatly" is directly measurable with these two.
///
/// # Example
///
/// ```
/// use assoc::Apriori;
///
/// let tx: Vec<Vec<u32>> = vec![vec![1, 2], vec![1, 2], vec![2, 3]];
/// let sets = Apriori::new(2).mine(&tx);
/// assert!(sets.iter().any(|s| s.items == vec![1, 2] && s.support == 2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Apriori {
    min_support: usize,
}

impl Apriori {
    /// Create with an absolute minimum support count.
    ///
    /// # Panics
    ///
    /// Panics if `min_support` is zero.
    pub fn new(min_support: usize) -> Self {
        assert!(min_support > 0, "min_support must be positive");
        Apriori { min_support }
    }

    /// The configured minimum support.
    pub fn min_support(&self) -> usize {
        self.min_support
    }

    /// Mine all frequent itemsets (canonical order: by length, then items).
    pub fn mine<I: Item>(&self, transactions: &[Vec<I>]) -> Vec<ItemSet<I>> {
        // normalized transactions: sorted, deduped
        let txs: Vec<Vec<I>> = transactions
            .iter()
            .map(|t| {
                let mut t = t.clone();
                t.sort_unstable();
                t.dedup();
                t
            })
            .collect();

        // L1
        let mut counts: HashMap<I, usize> = HashMap::new();
        for t in &txs {
            for &i in t {
                *counts.entry(i).or_insert(0) += 1;
            }
        }
        let mut out: Vec<ItemSet<I>> = Vec::new();
        let mut current: Vec<Vec<I>> = counts
            .iter()
            .filter(|&(_, &c)| c >= self.min_support)
            .map(|(&i, _)| vec![i])
            .collect();
        current.sort_unstable();
        for items in &current {
            out.push(ItemSet {
                items: items.clone(),
                support: counts[&items[0]],
            });
        }

        // Lk from Lk-1
        while !current.is_empty() {
            let prev: HashSet<&[I]> = current.iter().map(Vec::as_slice).collect();
            let mut candidates: HashSet<Vec<I>> = HashSet::new();
            // join step: sets sharing the first k-1 items
            for (a_idx, a) in current.iter().enumerate() {
                for b in &current[a_idx + 1..] {
                    if a[..a.len() - 1] == b[..b.len() - 1] {
                        let mut cand = a.clone();
                        cand.push(*b.last().expect("non-empty"));
                        cand.sort_unstable();
                        // prune step: every (k-1)-subset must be frequent
                        let all_subsets_frequent = (0..cand.len()).all(|skip| {
                            let sub: Vec<I> = cand
                                .iter()
                                .enumerate()
                                .filter(|&(i, _)| i != skip)
                                .map(|(_, &x)| x)
                                .collect();
                            prev.contains(sub.as_slice())
                        });
                        if all_subsets_frequent {
                            candidates.insert(cand);
                        }
                    }
                }
            }
            // count candidates
            let mut next: Vec<Vec<I>> = Vec::new();
            for cand in candidates {
                let support = txs.iter().filter(|t| is_subset(&cand, t)).count();
                if support >= self.min_support {
                    out.push(ItemSet {
                        items: cand.clone(),
                        support,
                    });
                    next.push(cand);
                }
            }
            next.sort_unstable();
            current = next;
        }
        canonicalize(out)
    }
}

/// Whether sorted `needle` is a subset of sorted `haystack` (merge walk).
fn is_subset<I: Item>(needle: &[I], haystack: &[I]) -> bool {
    let mut h = haystack.iter();
    'outer: for n in needle {
        for x in h.by_ref() {
            match x.cmp(n) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FpGrowth;

    fn classic_transactions() -> Vec<Vec<u8>> {
        vec![
            vec![1, 2, 5],
            vec![2, 4],
            vec![2, 3],
            vec![1, 2, 4],
            vec![1, 3],
            vec![2, 3],
            vec![1, 3],
            vec![1, 2, 3, 5],
            vec![1, 2, 3],
        ]
    }

    #[test]
    fn agrees_with_fp_growth_on_classic_example() {
        for min_support in 1..=5 {
            let ap = Apriori::new(min_support).mine(&classic_transactions());
            let fp = FpGrowth::new(min_support).mine(&classic_transactions());
            assert_eq!(ap, fp, "mismatch at min_support={min_support}");
        }
    }

    #[test]
    fn subset_check() {
        assert!(is_subset::<u8>(&[], &[1, 2]));
        assert!(is_subset(&[2], &[1, 2, 3]));
        assert!(is_subset(&[1, 3], &[1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[1, 2, 3]));
        assert!(!is_subset(&[0], &[1, 2, 3]));
    }

    #[test]
    fn empty_input() {
        let none: Vec<Vec<u8>> = Vec::new();
        assert!(Apriori::new(1).mine(&none).is_empty());
    }

    #[test]
    #[should_panic(expected = "min_support")]
    fn zero_support_rejected() {
        Apriori::new(0);
    }
}
