//! # assoc — association-rule mining substrate
//!
//! A from-scratch implementation of frequent-itemset mining and association
//! rules, built for the paper's FP-growth localization baseline (references \[15\], \[31\],
//! \[32\] in the RAPMiner paper) but generic over any item type:
//!
//! * [`FpGrowth`] — FP-tree construction plus recursive conditional-pattern
//!   mining (Han et al., *Mining Frequent Patterns without Candidate
//!   Generation*, SIGMOD 2000);
//! * [`Apriori`] — the classic level-wise miner (Agrawal & Srikant, VLDB
//!   1994), kept as an independently implemented oracle: both miners must
//!   return identical itemsets on any input, which the property tests
//!   enforce;
//! * [`generate_rules`] — association rules with support and confidence.
//!
//! # Example
//!
//! ```
//! use assoc::{FpGrowth, Apriori};
//!
//! let transactions: Vec<Vec<u32>> = vec![
//!     vec![1, 2, 3],
//!     vec![1, 2],
//!     vec![1, 3],
//!     vec![2, 3],
//! ];
//! let fp = FpGrowth::new(2).mine(&transactions);
//! let ap = Apriori::new(2).mine(&transactions);
//! assert_eq!(fp, ap);
//! // {1} appears 3 times
//! assert!(fp.iter().any(|s| s.items == vec![1] && s.support == 3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apriori;
mod fptree;
mod rules;

pub use apriori::Apriori;
pub use fptree::FpGrowth;
pub use rules::{generate_rules, Rule};

use std::fmt::Debug;
use std::hash::Hash;

/// Marker for types usable as items: cheap to copy, hashable, totally
/// ordered (itemsets are kept sorted for canonical form).
pub trait Item: Copy + Eq + Hash + Ord + Debug {}

impl<T: Copy + Eq + Hash + Ord + Debug> Item for T {}

/// A frequent itemset: its (sorted) items and absolute support count.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemSet<I> {
    /// The items, sorted ascending (canonical form).
    pub items: Vec<I>,
    /// Number of transactions containing all the items.
    pub support: usize,
}

/// Canonicalize and sort mining output so different miners compare equal:
/// itemsets ordered by (length, items).
pub(crate) fn canonicalize<I: Item>(mut sets: Vec<ItemSet<I>>) -> Vec<ItemSet<I>> {
    for s in &mut sets {
        s.items.sort_unstable();
    }
    sets.sort_unstable_by(|a, b| {
        a.items
            .len()
            .cmp(&b.items.len())
            .then_with(|| a.items.cmp(&b.items))
    });
    sets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form_sorts_items_and_sets() {
        let sets = vec![
            ItemSet {
                items: vec![3, 1],
                support: 2,
            },
            ItemSet {
                items: vec![2],
                support: 5,
            },
        ];
        let canon = canonicalize(sets);
        assert_eq!(canon[0].items, vec![2]);
        assert_eq!(canon[1].items, vec![1, 3]);
    }
}
