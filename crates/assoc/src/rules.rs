use std::collections::HashMap;

use crate::{Item, ItemSet};

/// An association rule `antecedent ⇒ consequent` with its quality metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule<I> {
    /// Left-hand side (sorted, non-empty).
    pub antecedent: Vec<I>,
    /// Right-hand side (sorted, non-empty, disjoint from the antecedent).
    pub consequent: Vec<I>,
    /// Support count of `antecedent ∪ consequent`.
    pub support: usize,
    /// `support(antecedent ∪ consequent) / support(antecedent)`.
    pub confidence: f64,
}

/// Generate all association rules with `confidence >= min_confidence` from a
/// set of frequent itemsets (as produced by [`crate::FpGrowth::mine`] or
/// [`crate::Apriori::mine`]).
///
/// Every non-empty proper subset of each itemset is tried as an antecedent.
/// Rules are returned sorted by confidence descending, then support
/// descending, then antecedent (deterministic output).
///
/// # Panics
///
/// Panics if `min_confidence` is not within `[0, 1]`.
///
/// # Example
///
/// ```
/// use assoc::{FpGrowth, generate_rules};
///
/// let tx: Vec<Vec<u32>> = vec![vec![1, 2], vec![1, 2], vec![1, 3]];
/// let frequent = FpGrowth::new(2).mine(&tx);
/// let rules = generate_rules(&frequent, 0.6);
/// // {2} => {1} holds with confidence 1.0
/// assert!(rules
///     .iter()
///     .any(|r| r.antecedent == vec![2] && r.consequent == vec![1] && r.confidence == 1.0));
/// ```
pub fn generate_rules<I: Item>(itemsets: &[ItemSet<I>], min_confidence: f64) -> Vec<Rule<I>> {
    assert!(
        (0.0..=1.0).contains(&min_confidence),
        "min_confidence must be in [0, 1], got {min_confidence}"
    );
    let support: HashMap<&[I], usize> = itemsets
        .iter()
        .map(|s| (s.items.as_slice(), s.support))
        .collect();
    let mut rules: Vec<Rule<I>> = Vec::new();
    for set in itemsets {
        let k = set.items.len();
        if k < 2 {
            continue;
        }
        // enumerate non-empty proper subsets via bitmask
        for mask in 1u32..((1u32 << k) - 1) {
            let antecedent: Vec<I> = set
                .items
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask & (1 << i) != 0)
                .map(|(_, &x)| x)
                .collect();
            let consequent: Vec<I> = set
                .items
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask & (1 << i) == 0)
                .map(|(_, &x)| x)
                .collect();
            // antecedent support must be present: frequent itemsets are
            // downward closed, so it always is when itemsets are complete.
            let Some(&ant_support) = support.get(antecedent.as_slice()) else {
                continue;
            };
            let confidence = set.support as f64 / ant_support as f64;
            if confidence >= min_confidence {
                rules.push(Rule {
                    antecedent,
                    consequent,
                    support: set.support,
                    confidence,
                });
            }
        }
    }
    rules.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .expect("confidence is finite")
            .then_with(|| b.support.cmp(&a.support))
            .then_with(|| a.antecedent.cmp(&b.antecedent))
            .then_with(|| a.consequent.cmp(&b.consequent))
    });
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FpGrowth;

    fn transactions() -> Vec<Vec<u8>> {
        vec![
            vec![1, 2, 3],
            vec![1, 2],
            vec![1, 2],
            vec![1, 3],
            vec![2, 3],
        ]
    }

    #[test]
    fn confidences_match_hand_computation() {
        let frequent = FpGrowth::new(1).mine(&transactions());
        let rules = generate_rules(&frequent, 0.0);
        let find = |a: &[u8], c: &[u8]| {
            rules
                .iter()
                .find(|r| r.antecedent == a && r.consequent == c)
                .map(|r| r.confidence)
        };
        // support(1,2) = 3, support(1) = 4 -> conf(1 => 2) = 0.75
        assert_eq!(find(&[1], &[2]), Some(0.75));
        // support(1,2) = 3, support(2) = 4 -> conf(2 => 1) = 0.75
        assert_eq!(find(&[2], &[1]), Some(0.75));
        // support(1,2,3) = 1, support(1,2) = 3
        let c = find(&[1, 2], &[3]).unwrap();
        assert!((c - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn min_confidence_filters() {
        let frequent = FpGrowth::new(1).mine(&transactions());
        let rules = generate_rules(&frequent, 0.75);
        assert!(rules.iter().all(|r| r.confidence >= 0.75));
        assert!(!rules.is_empty());
    }

    #[test]
    fn output_is_sorted_by_confidence() {
        let frequent = FpGrowth::new(1).mine(&transactions());
        let rules = generate_rules(&frequent, 0.0);
        for w in rules.windows(2) {
            assert!(w[0].confidence >= w[1].confidence);
        }
    }

    #[test]
    fn singletons_produce_no_rules() {
        let frequent = FpGrowth::new(5).mine(&transactions());
        assert!(frequent.iter().all(|s| s.items.len() == 1) || frequent.is_empty());
        assert!(generate_rules(&frequent, 0.0).is_empty());
    }

    #[test]
    fn antecedent_and_consequent_partition_the_itemset() {
        let frequent = FpGrowth::new(1).mine(&transactions());
        for r in generate_rules(&frequent, 0.0) {
            let mut joined = r.antecedent.clone();
            joined.extend_from_slice(&r.consequent);
            joined.sort_unstable();
            assert!(frequent.iter().any(|s| s.items == joined));
            assert!(!r.antecedent.is_empty() && !r.consequent.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "min_confidence")]
    fn bad_confidence_rejected() {
        generate_rules::<u8>(&[], 1.5);
    }
}
