use std::collections::HashMap;

use crate::{canonicalize, Item, ItemSet};

/// FP-growth frequent-itemset miner (Han, Pei & Yin, SIGMOD 2000).
///
/// Builds an FP-tree — a prefix tree over support-descending item order with
/// per-item header chains — then mines it recursively over conditional
/// pattern bases, without candidate generation.
///
/// # Example
///
/// ```
/// use assoc::FpGrowth;
///
/// let tx: Vec<Vec<&str>> = vec![
///     vec!["bread", "milk"],
///     vec!["bread", "diapers", "beer"],
///     vec!["milk", "diapers", "beer"],
///     vec!["bread", "milk", "diapers"],
/// ];
/// let frequent = FpGrowth::new(2).mine(&tx);
/// assert!(frequent.iter().any(|s| s.items == vec!["beer", "diapers"] && s.support == 2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpGrowth {
    min_support: usize,
}

impl FpGrowth {
    /// Create with an absolute minimum support count.
    ///
    /// # Panics
    ///
    /// Panics if `min_support` is zero (every subset of every transaction
    /// would be "frequent").
    pub fn new(min_support: usize) -> Self {
        assert!(min_support > 0, "min_support must be positive");
        FpGrowth { min_support }
    }

    /// The configured minimum support.
    pub fn min_support(&self) -> usize {
        self.min_support
    }

    /// Mine all frequent itemsets (canonical order: by length, then items).
    ///
    /// Duplicate items within one transaction are counted once.
    pub fn mine<I: Item>(&self, transactions: &[Vec<I>]) -> Vec<ItemSet<I>> {
        // 1. count item frequencies
        let mut counts: HashMap<I, usize> = HashMap::new();
        for tx in transactions {
            let mut seen: Vec<I> = tx.clone();
            seen.sort_unstable();
            seen.dedup();
            for item in seen {
                *counts.entry(item).or_insert(0) += 1;
            }
        }
        // 2. frequent items in support-descending (then item) order
        let mut frequent: Vec<(I, usize)> = counts
            .into_iter()
            .filter(|&(_, c)| c >= self.min_support)
            .collect();
        frequent.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let order: HashMap<I, usize> = frequent
            .iter()
            .enumerate()
            .map(|(rank, &(item, _))| (item, rank))
            .collect();

        // 3. build the tree from reordered, filtered transactions
        let mut tree = Tree::new(frequent.len());
        for tx in transactions {
            let mut items: Vec<I> = tx
                .iter()
                .copied()
                .filter(|i| order.contains_key(i))
                .collect();
            items.sort_unstable_by_key(|i| order[i]);
            items.dedup();
            tree.insert(&items, 1, &order);
        }

        // 4. mine recursively
        let mut out: Vec<ItemSet<I>> = Vec::new();
        self.mine_tree(&tree, &frequent, &[], &mut out);
        canonicalize(out)
    }

    fn mine_tree<I: Item>(
        &self,
        tree: &Tree<I>,
        frequent: &[(I, usize)],
        suffix: &[I],
        out: &mut Vec<ItemSet<I>>,
    ) {
        // iterate items bottom-up (least frequent first)
        for (rank, &(item, _)) in frequent.iter().enumerate().rev() {
            let support: usize = tree.header[rank].iter().map(|&n| tree.nodes[n].count).sum();
            if support < self.min_support {
                continue;
            }
            let mut items = vec![item];
            items.extend_from_slice(suffix);
            out.push(ItemSet {
                items: items.clone(),
                support,
            });

            // conditional pattern base: prefix paths of every node of `item`
            let mut cond_counts: HashMap<I, usize> = HashMap::new();
            let mut paths: Vec<(Vec<I>, usize)> = Vec::new();
            for &n in &tree.header[rank] {
                let count = tree.nodes[n].count;
                let mut path = Vec::new();
                let mut cur = tree.nodes[n].parent;
                while let Some(p) = cur {
                    if let Some(pi) = tree.nodes[p].item {
                        path.push(pi);
                        *cond_counts.entry(pi).or_insert(0) += count;
                    }
                    cur = tree.nodes[p].parent;
                }
                path.reverse();
                if !path.is_empty() {
                    paths.push((path, count));
                }
            }
            // frequent items of the conditional base
            let mut cond_frequent: Vec<(I, usize)> = cond_counts
                .into_iter()
                .filter(|&(_, c)| c >= self.min_support)
                .collect();
            if cond_frequent.is_empty() {
                continue;
            }
            cond_frequent.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            let cond_order: HashMap<I, usize> = cond_frequent
                .iter()
                .enumerate()
                .map(|(r, &(i, _))| (i, r))
                .collect();
            let mut cond_tree = Tree::new(cond_frequent.len());
            for (path, count) in &paths {
                let mut filtered: Vec<I> = path
                    .iter()
                    .copied()
                    .filter(|i| cond_order.contains_key(i))
                    .collect();
                filtered.sort_unstable_by_key(|i| cond_order[i]);
                cond_tree.insert(&filtered, *count, &cond_order);
            }
            self.mine_tree(&cond_tree, &cond_frequent, &items, out);
        }
    }
}

/// Arena-allocated FP-tree.
struct Tree<I> {
    nodes: Vec<Node<I>>,
    /// `header[rank]` = all node ids holding the item with that rank.
    header: Vec<Vec<usize>>,
}

struct Node<I> {
    item: Option<I>,
    count: usize,
    parent: Option<usize>,
    children: HashMap<I, usize>,
}

impl<I: Item> Tree<I> {
    fn new(num_items: usize) -> Self {
        Tree {
            nodes: vec![Node {
                item: None,
                count: 0,
                parent: None,
                children: HashMap::new(),
            }],
            header: vec![Vec::new(); num_items],
        }
    }

    fn insert(&mut self, items: &[I], count: usize, order: &HashMap<I, usize>) {
        let mut cur = 0usize;
        for &item in items {
            let next = match self.nodes[cur].children.get(&item) {
                Some(&n) => n,
                None => {
                    let n = self.nodes.len();
                    self.nodes.push(Node {
                        item: Some(item),
                        count: 0,
                        parent: Some(cur),
                        children: HashMap::new(),
                    });
                    self.nodes[cur].children.insert(item, n);
                    self.header[order[&item]].push(n);
                    n
                }
            };
            self.nodes[next].count += count;
            cur = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classic_transactions() -> Vec<Vec<u8>> {
        // the SIGMOD'00 running example (items renamed to numbers)
        vec![
            vec![1, 2, 5],
            vec![2, 4],
            vec![2, 3],
            vec![1, 2, 4],
            vec![1, 3],
            vec![2, 3],
            vec![1, 3],
            vec![1, 2, 3, 5],
            vec![1, 2, 3],
        ]
    }

    #[test]
    fn classic_example_itemsets() {
        let sets = FpGrowth::new(2).mine(&classic_transactions());
        let find = |items: &[u8]| sets.iter().find(|s| s.items == items).map(|s| s.support);
        assert_eq!(find(&[1]), Some(6));
        assert_eq!(find(&[2]), Some(7));
        assert_eq!(find(&[1, 2]), Some(4));
        assert_eq!(find(&[1, 2, 5]), Some(2));
        assert_eq!(find(&[1, 2, 3]), Some(2));
        assert_eq!(find(&[4]), Some(2));
        assert_eq!(find(&[5]), Some(2));
        // {4, 3} appears in no transaction twice
        assert_eq!(find(&[3, 4]), None);
    }

    #[test]
    fn min_support_filters() {
        let sets = FpGrowth::new(6).mine(&classic_transactions());
        assert!(sets.iter().all(|s| s.support >= 6));
        assert!(sets.iter().any(|s| s.items == vec![1]));
        assert!(sets.iter().any(|s| s.items == vec![2]));
        assert!(sets.iter().any(|s| s.items == vec![3])); // 3 appears 6 times
        assert_eq!(sets.len(), 3);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let none: Vec<Vec<u8>> = Vec::new();
        assert!(FpGrowth::new(1).mine(&none).is_empty());
        let empties: Vec<Vec<u8>> = vec![vec![], vec![]];
        assert!(FpGrowth::new(1).mine(&empties).is_empty());
    }

    #[test]
    fn duplicate_items_in_transaction_count_once() {
        let tx = vec![vec![7u8, 7, 7], vec![7]];
        let sets = FpGrowth::new(2).mine(&tx);
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].support, 2);
    }

    #[test]
    #[should_panic(expected = "min_support")]
    fn zero_support_rejected() {
        FpGrowth::new(0);
    }

    #[test]
    fn supports_are_antimonotone() {
        let sets = FpGrowth::new(1).mine(&classic_transactions());
        let lookup: HashMap<&[u8], usize> = sets
            .iter()
            .map(|s| (s.items.as_slice(), s.support))
            .collect();
        for s in &sets {
            if s.items.len() >= 2 {
                for drop_idx in 0..s.items.len() {
                    let mut subset = s.items.clone();
                    subset.remove(drop_idx);
                    let sub_support = lookup[subset.as_slice()];
                    assert!(
                        sub_support >= s.support,
                        "superset {:?} has more support than subset {subset:?}",
                        s.items
                    );
                }
            }
        }
    }
}
