//! # rapminer-cli — command-line anomaly localization
//!
//! The downstream-user surface of the RAPMiner reproduction: generate the
//! benchmark datasets, localize root anomaly patterns from a CSV leaf
//! table with any implemented method, and evaluate methods against a
//! dataset directory.
//!
//! ```text
//! rapminer generate --dataset rapmd --out ./rapmd-dir [--failures 105] [--seed 1]
//! rapminer generate --dataset squeeze --out ./squeeze-dir [--cases-per-group 10] [--seed 1]
//! rapminer localize --input case.csv [--method rapminer] [--k 3] [--t-cp 0.001] [--t-conf 0.8]
//! rapminer evaluate --dir ./rapmd-dir [--protocol rc|f1] [--k 3,4,5]
//! rapminer methods
//! ```
//!
//! The library half exposes the argument parser and command runners so the
//! binary stays a thin shim and everything is unit-testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;

pub use args::{Args, Command, ParseError};
pub use commands::{run, CliError};
