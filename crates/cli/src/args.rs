use std::collections::HashMap;
use std::fmt;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// The subcommand.
    pub command: Command,
}

/// The CLI subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `generate`: write a benchmark dataset to a directory.
    Generate {
        /// `squeeze` or `rapmd`.
        dataset: String,
        /// Output directory.
        out: String,
        /// RAPMD failures (ignored for squeeze).
        failures: usize,
        /// Squeeze cases per group (ignored for rapmd).
        cases_per_group: usize,
        /// Generation seed.
        seed: u64,
    },
    /// `localize`: run one method on a CSV leaf table.
    Localize {
        /// Input CSV path.
        input: String,
        /// Method name (see `methods`).
        method: String,
        /// Number of results.
        k: usize,
        /// RAPMiner `t_CP` override.
        t_cp: Option<f64>,
        /// RAPMiner `t_conf` override.
        t_conf: Option<f64>,
        /// Detection threshold applied when the CSV has no label column.
        detect_threshold: f64,
        /// Also print the per-attribute classification-power breakdown
        /// (RAPMiner only).
        explain: bool,
        /// Also print the search statistics (cuboids/combinations visited,
        /// candidates found, early-stop status) when the method reports
        /// them.
        stats: bool,
        /// Intra-frame worker threads for RAPMiner (`0` = machine width,
        /// `1` = serial); results are byte-identical at any setting.
        threads: usize,
    },
    /// `evaluate`: score methods against a dataset directory.
    Evaluate {
        /// Dataset directory (as written by `generate`).
        dir: String,
        /// `rc` or `f1`.
        protocol: String,
        /// The `k` values for the `rc` protocol.
        ks: Vec<usize>,
        /// Restrict to one method (default: all).
        method: Option<String>,
    },
    /// `simulate`: run the streaming operations demo on the CDN simulator.
    Simulate {
        /// Time steps to play.
        steps: usize,
        /// Step at which the failure is injected.
        failure_at: usize,
        /// Simulation seed.
        seed: u64,
        /// RAP specification to inject (`attr=elem&…`); empty picks a
        /// random location outage.
        rap: Option<String>,
    },
    /// `serve`: run the rapd localization daemon.
    Serve {
        /// NDJSON ingest/control listener address.
        listen: String,
        /// Prometheus `/metrics` listener address.
        metrics_listen: String,
        /// Number of shard worker threads.
        shards: usize,
        /// Bounded per-shard queue capacity (frames).
        queue: usize,
        /// Incident spool directory (no spooling when absent).
        spool: Option<String>,
        /// Incidents retained in the in-memory ring.
        ring: usize,
        /// Per-leaf history points kept per tenant.
        history: usize,
        /// Observations before alarms may fire.
        warmup: usize,
        /// Overall-KPI deviation that raises the alarm.
        alarm_threshold: f64,
        /// Per-leaf deviation labelling a leaf anomalous.
        leaf_threshold: f64,
        /// Root anomaly patterns reported per incident.
        k: usize,
        /// Moving-average forecast window.
        window: usize,
        /// Emit structured JSON log lines on stderr.
        log_json: bool,
        /// Localization deadline in milliseconds; `0` means unbounded.
        localize_deadline_ms: u64,
        /// Consecutive pipeline failures that open a tenant's circuit
        /// breaker; `0` disables the breaker.
        breaker_threshold: u32,
        /// How long an open breaker sheds frames before probing, in
        /// milliseconds.
        breaker_cooldown_ms: u64,
        /// Distinct unknown attribute values tolerated per tenant before
        /// drifted frames quarantine; `0` quarantines all drift.
        schema_drift_limit: usize,
        /// Frames buffered per tenant for timestamp reordering.
        reorder_window: usize,
        /// Out-of-orderness tolerated before a timestamped frame is late,
        /// in milliseconds.
        max_lateness_ms: u64,
        /// Intra-frame localization threads per shard worker (`1` keeps a
        /// frame on its shard's core, `0` fans one frame out over the
        /// machine).
        intra_frame_threads: usize,
        /// Run the streaming detector in front of localization: consume
        /// raw unlabelled frames and self-trigger when the overall KPI
        /// deviates.
        detect: bool,
        /// σ-score the detector must cross to trigger (detect mode only).
        detect_threshold: f64,
        /// Seasonal period of the detector's Holt–Winters forecaster;
        /// `0` uses plain EWMA.
        seasonal_period: usize,
        /// Span/event lines each shard worker's flight recorder retains
        /// for post-mortem blackbox dumps; `0` disables the recorder.
        flight_recorder: usize,
        /// Journal admitted frames to a write-ahead log under the spool
        /// directory so a crash loses nothing past admission (needs
        /// `--spool`; on by default).
        wal: bool,
        /// `fsync` every WAL append before acknowledging, extending
        /// durability from process crashes to power loss (off by
        /// default; costs one fsync per frame).
        wal_fsync: bool,
        /// Milliseconds between detector checkpoints; `0` disables
        /// periodic checkpointing (a graceful drain still checkpoints).
        checkpoint_interval_ms: u64,
        /// Size ceiling per spool file before it rotates to a `.1`
        /// segment and the oldest segment is evicted; `0` disables
        /// rotation.
        spool_max_bytes: u64,
    },
    /// `debug`: query a running rapd daemon's live internals (queue
    /// depths, per-tenant engine/breaker/reorder state, flight-recorder
    /// stats) and print the JSON reply.
    Debug {
        /// The daemon's NDJSON control address.
        addr: String,
        /// Restrict the per-tenant breakdown to one tenant.
        tenant: Option<String>,
    },
    /// `stats`: query a running rapd daemon's counters (ingested,
    /// processed, incidents, WAL depth, checkpoint age) and print the
    /// JSON reply.
    Stats {
        /// The daemon's NDJSON control address.
        addr: String,
    },
    /// `shutdown`: ask a running rapd daemon to drain gracefully —
    /// flush its reorder buffers, checkpoint every tenant, fsync the
    /// spools — and exit.
    Shutdown {
        /// The daemon's NDJSON control address.
        addr: String,
    },
    /// `detect`: offline detection replay — play a seeded anomalous
    /// stream through the streaming detector and score recall, false
    /// triggers, and trigger latency against the ground truth.
    Detect {
        /// Stream length in steps.
        steps: usize,
        /// Clean steps before the first injection.
        warmup: usize,
        /// Number of injected failures.
        injections: usize,
        /// Anomalous steps per failure.
        duration: usize,
        /// Stream seed.
        seed: u64,
        /// σ-score that triggers a detection.
        threshold: f64,
        /// Seasonal period of the detector's forecaster (`0` = EWMA).
        seasonal_period: usize,
        /// Gate: minimum recall required for exit success.
        min_recall: f64,
        /// Gate: false triggers tolerated for exit success.
        max_false_triggers: usize,
    },
    /// `methods`: list available localizers.
    Methods,
    /// `help`: print usage.
    Help,
}

/// A command-line parse failure (message is user-facing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage text printed by `help` and on parse errors.
pub const USAGE: &str = "\
rapminer — root anomaly pattern mining for multi-dimensional KPIs

USAGE:
  rapminer generate --dataset <squeeze|rapmd> --out <dir>
                    [--failures N] [--cases-per-group N] [--seed N]
  rapminer localize --input <case.csv> [--method NAME] [--k N]
                    [--t-cp X] [--t-conf X] [--detect-threshold X]
                    [--explain true] [--stats true] [--threads N]
  rapminer evaluate --dir <dataset-dir> [--protocol rc|f1] [--k 3,4,5]
                    [--method NAME]
  rapminer simulate [--steps N] [--failure-at N] [--seed N] [--rap SPEC]
  rapminer serve    [--listen HOST:PORT] [--metrics-listen HOST:PORT]
                    [--shards N] [--queue N] [--spool DIR] [--ring N]
                    [--history N] [--warmup N] [--alarm-threshold X]
                    [--leaf-threshold X] [--k N] [--window N]
                    [--log-json true] [--localize-deadline-ms N]
                    [--breaker-threshold N] [--breaker-cooldown-ms N]
                    [--schema-drift-limit N] [--reorder-window N]
                    [--max-lateness-ms N] [--intra-frame-threads N]
                    [--detect true] [--detect-threshold X]
                    [--seasonal-period N] [--flight-recorder N]
                    [--wal true|false] [--wal-fsync true|false]
                    [--checkpoint-interval-ms N]
                    [--spool-max-bytes N]
  rapminer debug    [--addr HOST:PORT] [--tenant NAME]
  rapminer stats    [--addr HOST:PORT]
  rapminer shutdown [--addr HOST:PORT]
  rapminer detect   [--steps N] [--warmup N] [--injections N]
                    [--duration N] [--seed N] [--threshold X]
                    [--seasonal-period N] [--min-recall X]
                    [--max-false-triggers N]
  rapminer methods
  rapminer help
";

impl Args {
    /// Parse a raw argument vector (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a user-facing [`ParseError`] on unknown commands/flags,
    /// missing required flags, or unparsable numbers.
    pub fn parse<I, S>(raw: I) -> Result<Args, ParseError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut raw = raw.into_iter().map(Into::into);
        let command = raw.next().unwrap_or_else(|| "help".to_string());
        let flags = parse_flags(raw)?;
        let command = match command.as_str() {
            "generate" => Command::Generate {
                dataset: require(&flags, "dataset")?,
                out: require(&flags, "out")?,
                failures: parse_num(&flags, "failures", 105)?,
                cases_per_group: parse_num(&flags, "cases-per-group", 10)?,
                seed: parse_num(&flags, "seed", 20220607)?,
            },
            "localize" => Command::Localize {
                input: require(&flags, "input")?,
                method: flags
                    .get("method")
                    .cloned()
                    .unwrap_or_else(|| "rapminer".to_string()),
                k: parse_num(&flags, "k", 3)?,
                t_cp: parse_opt_float(&flags, "t-cp")?,
                t_conf: parse_opt_float(&flags, "t-conf")?,
                detect_threshold: parse_float(&flags, "detect-threshold", 0.095)?,
                explain: parse_bool(&flags, "explain")?,
                stats: parse_bool(&flags, "stats")?,
                threads: parse_num(&flags, "threads", 0)?,
            },
            "evaluate" => Command::Evaluate {
                dir: require(&flags, "dir")?,
                protocol: flags
                    .get("protocol")
                    .cloned()
                    .unwrap_or_else(|| "rc".to_string()),
                ks: parse_k_list(&flags)?,
                method: flags.get("method").cloned(),
            },
            "simulate" => Command::Simulate {
                steps: parse_num(&flags, "steps", 120)?,
                failure_at: parse_num(&flags, "failure-at", 90)?,
                seed: parse_num(&flags, "seed", 404)?,
                rap: flags.get("rap").cloned(),
            },
            "serve" => Command::Serve {
                listen: flags
                    .get("listen")
                    .cloned()
                    .unwrap_or_else(|| "127.0.0.1:4817".to_string()),
                metrics_listen: flags
                    .get("metrics-listen")
                    .cloned()
                    .unwrap_or_else(|| "127.0.0.1:9187".to_string()),
                shards: parse_num(&flags, "shards", 4)?,
                queue: parse_num(&flags, "queue", 1024)?,
                spool: flags.get("spool").cloned(),
                ring: parse_num(&flags, "ring", 256)?,
                history: parse_num(&flags, "history", 1440)?,
                warmup: parse_num(&flags, "warmup", 10)?,
                alarm_threshold: parse_float(&flags, "alarm-threshold", 0.1)?,
                leaf_threshold: parse_float(&flags, "leaf-threshold", 0.3)?,
                k: parse_num(&flags, "k", 3)?,
                window: parse_num(&flags, "window", 10)?,
                log_json: parse_bool(&flags, "log-json")?,
                localize_deadline_ms: parse_num(&flags, "localize-deadline-ms", 0)?,
                breaker_threshold: parse_num(&flags, "breaker-threshold", 5)?,
                breaker_cooldown_ms: parse_num(&flags, "breaker-cooldown-ms", 10_000)?,
                schema_drift_limit: parse_num(&flags, "schema-drift-limit", 8)?,
                reorder_window: parse_num(&flags, "reorder-window", 32)?,
                max_lateness_ms: parse_num(&flags, "max-lateness-ms", 2_000)?,
                intra_frame_threads: parse_num(&flags, "intra-frame-threads", 1)?,
                detect: parse_bool(&flags, "detect")?,
                detect_threshold: parse_float(&flags, "detect-threshold", 4.0)?,
                seasonal_period: parse_num(&flags, "seasonal-period", 0)?,
                flight_recorder: parse_num(&flags, "flight-recorder", 256)?,
                wal: parse_bool_default(&flags, "wal", true)?,
                wal_fsync: parse_bool(&flags, "wal-fsync")?,
                checkpoint_interval_ms: parse_num(&flags, "checkpoint-interval-ms", 30_000)?,
                spool_max_bytes: parse_num(&flags, "spool-max-bytes", 64 << 20)?,
            },
            "debug" => Command::Debug {
                addr: flags
                    .get("addr")
                    .cloned()
                    .unwrap_or_else(|| "127.0.0.1:4817".to_string()),
                tenant: flags.get("tenant").cloned(),
            },
            "stats" => Command::Stats {
                addr: flags
                    .get("addr")
                    .cloned()
                    .unwrap_or_else(|| "127.0.0.1:4817".to_string()),
            },
            "shutdown" => Command::Shutdown {
                addr: flags
                    .get("addr")
                    .cloned()
                    .unwrap_or_else(|| "127.0.0.1:4817".to_string()),
            },
            "detect" => Command::Detect {
                steps: parse_num(&flags, "steps", 360)?,
                warmup: parse_num(&flags, "warmup", 60)?,
                injections: parse_num(&flags, "injections", 5)?,
                duration: parse_num(&flags, "duration", 4)?,
                seed: parse_num(&flags, "seed", 7)?,
                threshold: parse_float(&flags, "threshold", 4.0)?,
                seasonal_period: parse_num(&flags, "seasonal-period", 0)?,
                min_recall: parse_float(&flags, "min-recall", 0.0)?,
                max_false_triggers: parse_num(&flags, "max-false-triggers", usize::MAX)?,
            },
            "methods" => Command::Methods,
            "help" | "--help" | "-h" => Command::Help,
            other => {
                return Err(ParseError(format!(
                    "unknown command `{other}`; run `rapminer help`"
                )))
            }
        };
        Ok(Args { command })
    }
}

fn parse_flags<I: Iterator<Item = String>>(
    mut raw: I,
) -> Result<HashMap<String, String>, ParseError> {
    let mut flags = HashMap::new();
    while let Some(flag) = raw.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(ParseError(format!("expected a --flag, got `{flag}`")));
        };
        let value = raw
            .next()
            .ok_or_else(|| ParseError(format!("flag --{name} needs a value")))?;
        if flags.insert(name.to_string(), value).is_some() {
            return Err(ParseError(format!("flag --{name} given twice")));
        }
    }
    Ok(flags)
}

fn require(flags: &HashMap<String, String>, name: &str) -> Result<String, ParseError> {
    flags
        .get(name)
        .cloned()
        .ok_or_else(|| ParseError(format!("missing required flag --{name}")))
}

fn parse_num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, ParseError> {
    match flags.get(name) {
        None => Ok(default),
        Some(s) => s
            .parse()
            .map_err(|_| ParseError(format!("--{name}: `{s}` is not a valid number"))),
    }
}

fn parse_float(
    flags: &HashMap<String, String>,
    name: &str,
    default: f64,
) -> Result<f64, ParseError> {
    parse_num(flags, name, default)
}

fn parse_opt_float(flags: &HashMap<String, String>, name: &str) -> Result<Option<f64>, ParseError> {
    match flags.get(name) {
        None => Ok(None),
        Some(s) => s
            .parse()
            .map(Some)
            .map_err(|_| ParseError(format!("--{name}: `{s}` is not a valid number"))),
    }
}

fn parse_bool(flags: &HashMap<String, String>, name: &str) -> Result<bool, ParseError> {
    parse_bool_default(flags, name, false)
}

fn parse_bool_default(
    flags: &HashMap<String, String>,
    name: &str,
    default: bool,
) -> Result<bool, ParseError> {
    match flags.get(name).map(String::as_str) {
        None => Ok(default),
        Some("true") | Some("1") | Some("yes") => Ok(true),
        Some("false") | Some("0") | Some("no") => Ok(false),
        Some(other) => Err(ParseError(format!("--{name}: `{other}` is not a boolean"))),
    }
}

fn parse_k_list(flags: &HashMap<String, String>) -> Result<Vec<usize>, ParseError> {
    match flags.get("k") {
        None => Ok(vec![3, 4, 5]),
        Some(s) => s
            .split(',')
            .map(|p| {
                p.trim()
                    .parse()
                    .map_err(|_| ParseError(format!("--k: `{p}` is not a valid number")))
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_generate() {
        let args = Args::parse([
            "generate",
            "--dataset",
            "rapmd",
            "--out",
            "/tmp/x",
            "--failures",
            "7",
        ])
        .unwrap();
        assert_eq!(
            args.command,
            Command::Generate {
                dataset: "rapmd".into(),
                out: "/tmp/x".into(),
                failures: 7,
                cases_per_group: 10,
                seed: 20220607,
            }
        );
    }

    #[test]
    fn parses_localize_with_overrides() {
        let args = Args::parse([
            "localize", "--input", "a.csv", "--method", "squeeze", "--k", "5", "--t-cp", "0.01",
        ])
        .unwrap();
        match args.command {
            Command::Localize {
                input,
                method,
                k,
                t_cp,
                t_conf,
                detect_threshold,
                explain,
                stats,
                threads,
            } => {
                assert_eq!(input, "a.csv");
                assert_eq!(method, "squeeze");
                assert_eq!(k, 5);
                assert_eq!(t_cp, Some(0.01));
                assert_eq!(t_conf, None);
                assert_eq!(detect_threshold, 0.095);
                assert!(!explain);
                assert!(!stats);
                assert_eq!(threads, 0, "default = machine width");
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_localize_stats_and_serve_log_json() {
        let args = Args::parse(["localize", "--input", "a.csv", "--stats", "true"]).unwrap();
        match args.command {
            Command::Localize { stats, .. } => assert!(stats),
            other => panic!("wrong command {other:?}"),
        }
        let args = Args::parse(["serve", "--log-json", "true"]).unwrap();
        match args.command {
            Command::Serve { log_json, .. } => assert!(log_json),
            other => panic!("wrong command {other:?}"),
        }
        // booleans still default off
        match Args::parse(["serve"]).unwrap().command {
            Command::Serve { log_json, .. } => assert!(!log_json),
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_serve_fault_tolerance_flags() {
        let args = Args::parse([
            "serve",
            "--localize-deadline-ms",
            "250",
            "--breaker-threshold",
            "3",
            "--breaker-cooldown-ms",
            "5000",
        ])
        .unwrap();
        match args.command {
            Command::Serve {
                localize_deadline_ms,
                breaker_threshold,
                breaker_cooldown_ms,
                ..
            } => {
                assert_eq!(localize_deadline_ms, 250);
                assert_eq!(breaker_threshold, 3);
                assert_eq!(breaker_cooldown_ms, 5000);
            }
            other => panic!("wrong command {other:?}"),
        }
        // defaults: unbounded localization, breaker 5 failures / 10 s
        match Args::parse(["serve"]).unwrap().command {
            Command::Serve {
                localize_deadline_ms,
                breaker_threshold,
                breaker_cooldown_ms,
                ..
            } => {
                assert_eq!(localize_deadline_ms, 0);
                assert_eq!(breaker_threshold, 5);
                assert_eq!(breaker_cooldown_ms, 10_000);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_serve_admission_flags() {
        let args = Args::parse([
            "serve",
            "--schema-drift-limit",
            "2",
            "--reorder-window",
            "64",
            "--max-lateness-ms",
            "500",
        ])
        .unwrap();
        match args.command {
            Command::Serve {
                schema_drift_limit,
                reorder_window,
                max_lateness_ms,
                ..
            } => {
                assert_eq!(schema_drift_limit, 2);
                assert_eq!(reorder_window, 64);
                assert_eq!(max_lateness_ms, 500);
            }
            other => panic!("wrong command {other:?}"),
        }
        // defaults: 8 drifted values, 32-frame window, 2 s lateness
        match Args::parse(["serve"]).unwrap().command {
            Command::Serve {
                schema_drift_limit,
                reorder_window,
                max_lateness_ms,
                ..
            } => {
                assert_eq!(schema_drift_limit, 8);
                assert_eq!(reorder_window, 32);
                assert_eq!(max_lateness_ms, 2_000);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_thread_flags() {
        let args = Args::parse(["localize", "--input", "a.csv", "--threads", "8"]).unwrap();
        match args.command {
            Command::Localize { threads, .. } => assert_eq!(threads, 8),
            other => panic!("wrong command {other:?}"),
        }
        let args = Args::parse(["serve", "--intra-frame-threads", "4"]).unwrap();
        match args.command {
            Command::Serve {
                intra_frame_threads,
                ..
            } => assert_eq!(intra_frame_threads, 4),
            other => panic!("wrong command {other:?}"),
        }
        // default: one core per shard frame, as before this flag existed
        match Args::parse(["serve"]).unwrap().command {
            Command::Serve {
                intra_frame_threads,
                ..
            } => assert_eq!(intra_frame_threads, 1),
            other => panic!("wrong command {other:?}"),
        }
        assert!(Args::parse(["localize", "--input", "a", "--threads", "x"]).is_err());
    }

    #[test]
    fn parses_serve_detect_flags() {
        let args = Args::parse([
            "serve",
            "--detect",
            "true",
            "--detect-threshold",
            "5.5",
            "--seasonal-period",
            "1440",
        ])
        .unwrap();
        match args.command {
            Command::Serve {
                detect,
                detect_threshold,
                seasonal_period,
                ..
            } => {
                assert!(detect);
                assert_eq!(detect_threshold, 5.5);
                assert_eq!(seasonal_period, 1440);
            }
            other => panic!("wrong command {other:?}"),
        }
        // defaults: classic mode, 4σ, EWMA-only
        match Args::parse(["serve"]).unwrap().command {
            Command::Serve {
                detect,
                detect_threshold,
                seasonal_period,
                ..
            } => {
                assert!(!detect);
                assert_eq!(detect_threshold, 4.0);
                assert_eq!(seasonal_period, 0);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_serve_flight_recorder_and_debug() {
        match Args::parse(["serve", "--flight-recorder", "64"])
            .unwrap()
            .command
        {
            Command::Serve {
                flight_recorder, ..
            } => assert_eq!(flight_recorder, 64),
            other => panic!("wrong command {other:?}"),
        }
        // default matches obs::recorder::DEFAULT_FLIGHT_CAPACITY
        match Args::parse(["serve"]).unwrap().command {
            Command::Serve {
                flight_recorder, ..
            } => assert_eq!(flight_recorder, 256),
            other => panic!("wrong command {other:?}"),
        }
        assert_eq!(
            Args::parse(["debug"]).unwrap().command,
            Command::Debug {
                addr: "127.0.0.1:4817".into(),
                tenant: None,
            }
        );
        assert_eq!(
            Args::parse(["debug", "--addr", "10.0.0.1:9", "--tenant", "edge"])
                .unwrap()
                .command,
            Command::Debug {
                addr: "10.0.0.1:9".into(),
                tenant: Some("edge".into()),
            }
        );
    }

    #[test]
    fn parses_serve_durability_flags() {
        let args = Args::parse([
            "serve",
            "--wal",
            "false",
            "--wal-fsync",
            "true",
            "--checkpoint-interval-ms",
            "5000",
            "--spool-max-bytes",
            "1048576",
        ])
        .unwrap();
        match args.command {
            Command::Serve {
                wal,
                wal_fsync,
                checkpoint_interval_ms,
                spool_max_bytes,
                ..
            } => {
                assert!(!wal);
                assert!(wal_fsync);
                assert_eq!(checkpoint_interval_ms, 5000);
                assert_eq!(spool_max_bytes, 1_048_576);
            }
            other => panic!("wrong command {other:?}"),
        }
        // defaults: WAL on (no per-append fsync), 30 s checkpoints,
        // 64 MiB spool ceiling
        match Args::parse(["serve"]).unwrap().command {
            Command::Serve {
                wal,
                wal_fsync,
                checkpoint_interval_ms,
                spool_max_bytes,
                ..
            } => {
                assert!(wal, "WAL must default on");
                assert!(!wal_fsync, "per-append fsync must default off");
                assert_eq!(checkpoint_interval_ms, 30_000);
                assert_eq!(spool_max_bytes, 64 << 20);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(Args::parse(["serve", "--wal", "maybe"]).is_err());
    }

    #[test]
    fn parses_stats_and_shutdown() {
        assert_eq!(
            Args::parse(["stats"]).unwrap().command,
            Command::Stats {
                addr: "127.0.0.1:4817".into(),
            }
        );
        assert_eq!(
            Args::parse(["shutdown", "--addr", "10.0.0.1:9"])
                .unwrap()
                .command,
            Command::Shutdown {
                addr: "10.0.0.1:9".into(),
            }
        );
    }

    #[test]
    fn parses_detect_replay() {
        let args = Args::parse([
            "detect",
            "--steps",
            "240",
            "--seed",
            "11",
            "--min-recall",
            "0.9",
            "--max-false-triggers",
            "1",
        ])
        .unwrap();
        assert_eq!(
            args.command,
            Command::Detect {
                steps: 240,
                warmup: 60,
                injections: 5,
                duration: 4,
                seed: 11,
                threshold: 4.0,
                seasonal_period: 0,
                min_recall: 0.9,
                max_false_triggers: 1,
            }
        );
        // defaults: no gate (recall 0, unlimited false triggers)
        match Args::parse(["detect"]).unwrap().command {
            Command::Detect {
                min_recall,
                max_false_triggers,
                ..
            } => {
                assert_eq!(min_recall, 0.0);
                assert_eq!(max_false_triggers, usize::MAX);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(Args::parse(["detect", "--threshold", "x"]).is_err());
    }

    #[test]
    fn parses_evaluate_k_list() {
        let args =
            Args::parse(["evaluate", "--dir", "d", "--protocol", "rc", "--k", "1,2,3"]).unwrap();
        match args.command {
            Command::Evaluate { ks, .. } => assert_eq!(ks, vec![1, 2, 3]),
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn defaults_to_help() {
        let none: [&str; 0] = [];
        assert_eq!(Args::parse(none).unwrap().command, Command::Help);
        assert_eq!(Args::parse(["help"]).unwrap().command, Command::Help);
        assert_eq!(Args::parse(["methods"]).unwrap().command, Command::Methods);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Args::parse(["frobnicate"]).is_err());
        assert!(Args::parse(["generate", "--dataset", "rapmd"]).is_err()); // no --out
        assert!(Args::parse(["localize", "--input"]).is_err()); // missing value
        assert!(Args::parse(["localize", "oops"]).is_err()); // not a flag
        assert!(Args::parse(["localize", "--input", "x", "--k", "zzz"]).is_err());
        assert!(Args::parse(["evaluate", "--dir", "d", "--dir", "e"]).is_err());
    }
}
