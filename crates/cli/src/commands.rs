use std::fmt;
use std::path::Path;

use baselines::{all_localizers, Localizer, RapMinerLocalizer};
use datasets::{
    load_dataset, save_dataset, RapmdConfig, RapmdGenerator, SqueezeGenConfig, SqueezeGenerator,
};
use eval::{evaluate_f1, evaluate_rc, Table};
use mdkpi::read_frame_csv;
use rapminer::Config;

use crate::args::{Args, Command, USAGE};

/// CLI-level error: every failure path maps to a user-facing message plus
/// a process exit code.
#[derive(Debug)]
pub struct CliError {
    message: String,
}

impl CliError {
    fn new(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

impl From<mdkpi::Error> for CliError {
    fn from(e: mdkpi::Error) -> Self {
        CliError::new(e.to_string())
    }
}

impl From<baselines::Error> for CliError {
    fn from(e: baselines::Error) -> Self {
        CliError::new(e.to_string())
    }
}

/// Execute a parsed command, writing human-readable output into `out`.
///
/// # Errors
///
/// Returns a [`CliError`] with a user-facing message on any failure
/// (unknown method, unreadable file, …).
pub fn run(args: &Args, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    match &args.command {
        Command::Help => {
            write!(out, "{USAGE}").map_err(io_err)?;
            Ok(())
        }
        Command::Methods => {
            for m in all_localizers() {
                writeln!(out, "{}", m.name()).map_err(io_err)?;
            }
            Ok(())
        }
        Command::Generate {
            dataset,
            out: dir,
            failures,
            cases_per_group,
            seed,
        } => generate(dataset, dir, *failures, *cases_per_group, *seed, out),
        Command::Localize {
            input,
            method,
            k,
            t_cp,
            t_conf,
            detect_threshold,
            explain,
            stats,
            threads,
        } => localize(
            input,
            method,
            *k,
            *t_cp,
            *t_conf,
            *detect_threshold,
            *explain,
            *stats,
            *threads,
            out,
        ),
        Command::Evaluate {
            dir,
            protocol,
            ks,
            method,
        } => evaluate(dir, protocol, ks, method.as_deref(), out),
        Command::Simulate {
            steps,
            failure_at,
            seed,
            rap,
        } => simulate(*steps, *failure_at, *seed, rap.as_deref(), out),
        Command::Detect {
            steps,
            warmup,
            injections,
            duration,
            seed,
            threshold,
            seasonal_period,
            min_recall,
            max_false_triggers,
        } => detect(
            DetectArgs {
                steps: *steps,
                warmup: *warmup,
                injections: *injections,
                duration: *duration,
                seed: *seed,
                threshold: *threshold,
                seasonal_period: *seasonal_period,
                min_recall: *min_recall,
                max_false_triggers: *max_false_triggers,
            },
            out,
        ),
        Command::Serve { .. } => {
            let handle = serve_start(&args.command, out)?;
            // daemon mode: serve until a `shutdown` control verb drains
            // us (or the process is killed), then flush, checkpoint,
            // and exit 0
            handle.wait_for_drain();
            handle.shutdown();
            writeln!(out, "rapd drained; exiting").map_err(io_err)?;
            Ok(())
        }
        Command::Debug { addr, tenant } => debug(addr, tenant.as_deref(), out),
        Command::Stats { addr } => stats(addr, out),
        Command::Shutdown { addr } => shutdown(addr, out),
    }
}

/// The `debug` subcommand: ask a running rapd for its live internals.
///
/// Connects to the daemon's NDJSON control port, sends a single
/// `{"type":"debug"}` request (optionally scoped to one tenant), and
/// prints the one-line JSON reply verbatim so it can be piped into `jq`.
fn debug(addr: &str, tenant: Option<&str>, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    use service::json::Json;
    let mut fields = vec![("type".to_string(), Json::str("debug"))];
    if let Some(t) = tenant {
        fields.push(("tenant".to_string(), Json::str(t)));
    }
    control_request(addr, &Json::Obj(fields).render(), out)
}

/// The `stats` subcommand: print a running rapd's counters (ingested,
/// processed, incidents, WAL depth, checkpoint age) as one JSON line.
fn stats(addr: &str, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    use service::json::Json;
    let request = Json::Obj(vec![("type".to_string(), Json::str("stats"))]).render();
    control_request(addr, &request, out)
}

/// The `shutdown` subcommand: ask a running rapd to drain gracefully.
/// The daemon flushes its reorder buffers, checkpoints every tenant,
/// fsyncs the spools, replies, and exits 0.
fn shutdown(addr: &str, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    use service::json::Json;
    let request = Json::Obj(vec![("type".to_string(), Json::str("shutdown"))]).render();
    control_request(addr, &request, out)
}

/// Send one NDJSON control request and print the one-line JSON reply
/// verbatim so it can be piped into `jq`.
fn control_request(
    addr: &str,
    request: &str,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    use std::io::{BufRead, BufReader, Write};

    let stream = connect_with_retry(addr)?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| CliError::new(format!("cannot clone connection: {e}")))?;
    writeln!(writer, "{request}").map_err(io_err)?;
    writer.flush().map_err(io_err)?;

    let mut reply = String::new();
    BufReader::new(stream)
        .read_line(&mut reply)
        .map_err(io_err)?;
    if reply.trim().is_empty() {
        return Err(CliError::new(format!(
            "rapd at {addr} closed the connection without replying"
        )));
    }
    writeln!(out, "{}", reply.trim_end()).map_err(io_err)?;
    Ok(())
}

/// Connect to the daemon's control port, retrying transient refusals
/// (daemon still booting, or restarting after a crash) with capped
/// exponential backoff: five attempts spaced 50/100/200/400 ms apart.
/// The final failure surfaces as the usual user-facing connect error.
fn connect_with_retry(addr: &str) -> Result<std::net::TcpStream, CliError> {
    const ATTEMPTS: u32 = 5;
    let mut backoff = std::time::Duration::from_millis(50);
    for attempt in 1..=ATTEMPTS {
        match std::net::TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) if attempt == ATTEMPTS => {
                return Err(CliError::new(format!(
                    "cannot connect to rapd at {addr}: {e}"
                )));
            }
            Err(_) => {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(std::time::Duration::from_millis(800));
            }
        }
    }
    unreachable!("the loop returns on the last attempt")
}

/// Boot the rapd daemon from the `serve` flags and report its listeners.
/// Split from [`run`] so tests can boot and then shut the daemon down.
pub(crate) fn serve_start(
    command: &Command,
    out: &mut dyn std::io::Write,
) -> Result<service::ServerHandle, CliError> {
    let Command::Serve {
        listen,
        metrics_listen,
        shards,
        queue,
        spool,
        ring,
        history,
        warmup,
        alarm_threshold,
        leaf_threshold,
        k,
        window,
        log_json,
        localize_deadline_ms,
        breaker_threshold,
        breaker_cooldown_ms,
        schema_drift_limit,
        reorder_window,
        max_lateness_ms,
        intra_frame_threads,
        detect,
        detect_threshold,
        seasonal_period,
        flight_recorder,
        wal,
        wal_fsync,
        checkpoint_interval_ms,
        spool_max_bytes,
    } = command
    else {
        return Err(CliError::new("serve_start requires the serve command"));
    };
    let config = service::ServiceConfig {
        listen: listen.clone(),
        metrics_listen: metrics_listen.clone(),
        shards: *shards,
        queue_capacity: *queue,
        spool_dir: spool.as_ref().map(std::path::PathBuf::from),
        ring_capacity: *ring,
        forecast_window: *window,
        log_json: *log_json,
        breaker_threshold: *breaker_threshold,
        breaker_cooldown: std::time::Duration::from_millis(*breaker_cooldown_ms),
        schema_drift_limit: *schema_drift_limit,
        reorder_window: *reorder_window,
        max_lateness: std::time::Duration::from_millis(*max_lateness_ms),
        detect: *detect,
        detect_threshold: *detect_threshold,
        seasonal_period: *seasonal_period,
        flight_recorder_capacity: *flight_recorder,
        wal: *wal,
        wal_fsync: *wal_fsync,
        checkpoint_interval: std::time::Duration::from_millis(*checkpoint_interval_ms),
        spool_max_bytes: *spool_max_bytes,
        pipeline: pipeline::PipelineConfig {
            history_len: *history,
            warmup: *warmup,
            alarm_threshold: *alarm_threshold,
            leaf_threshold: *leaf_threshold,
            k: *k,
            // 0 on the command line means "no deadline"
            localize_deadline: match *localize_deadline_ms {
                0 => None,
                ms => Some(std::time::Duration::from_millis(ms)),
            },
            localize_threads: *intra_frame_threads,
        },
        ..service::ServiceConfig::default()
    };
    let handle = service::start(config, service::default_factory())
        .map_err(|e| CliError::new(e.to_string()))?;
    writeln!(
        out,
        "rapd listening on {} (NDJSON ingest/control)",
        handle.ingest_addr()
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "rapd metrics on http://{}/metrics",
        handle.metrics_addr()
    )
    .map_err(io_err)?;
    if let Some(dir) = spool {
        writeln!(out, "rapd spooling incidents under {dir}").map_err(io_err)?;
        if *wal {
            writeln!(
                out,
                "rapd journaling admitted frames and checkpoints under {dir}"
            )
            .map_err(io_err)?;
        }
    }
    if *detect {
        writeln!(
            out,
            "rapd detect mode: self-triggering localization at {detect_threshold}σ"
        )
        .map_err(io_err)?;
    }
    Ok(handle)
}

/// The `detect` subcommand's knobs, bundled so the replay stays one call.
struct DetectArgs {
    steps: usize,
    warmup: usize,
    injections: usize,
    duration: usize,
    seed: u64,
    threshold: f64,
    seasonal_period: usize,
    min_recall: f64,
    max_false_triggers: usize,
}

/// Offline detection replay: play a seeded anomalous stream through the
/// streaming detect-then-localize pipeline and score recall, false
/// triggers, and trigger latency against the stream's ground truth.
/// Fails (non-zero exit) when the `--min-recall` / `--max-false-triggers`
/// gates are violated. Output is deterministic in the flags — no
/// wall-clock columns — so CI can diff two runs byte-for-byte.
fn detect(args: DetectArgs, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    use cdnsim::{AnomalyStream, AnomalyStreamConfig};
    use eval::evaluate_detection;
    use pipeline::{DetectingPipeline, DetectorConfig, PipelineConfig};

    let stream = AnomalyStream::new(
        AnomalyStreamConfig {
            steps: args.steps,
            warmup: args.warmup,
            injections: args.injections,
            duration: args.duration,
            ..AnomalyStreamConfig::default()
        },
        args.seed,
    );
    let detector_config = DetectorConfig {
        sigma_threshold: args.threshold,
        seasonal_period: args.seasonal_period,
        ..DetectorConfig::default()
    };
    let mut pipe = DetectingPipeline::try_new(
        PipelineConfig::default(),
        detector_config,
        RapMinerLocalizer::default(),
    )
    .map_err(|e| CliError::new(format!("invalid detector config: {e}")))?;

    writeln!(
        out,
        "replaying {} steps, {} injected failures (seed {}, threshold {}σ)",
        args.steps, args.injections, args.seed, args.threshold
    )
    .map_err(io_err)?;

    let mut triggers = Vec::new();
    for step in 0..stream.steps() {
        let report = pipe
            .observe(&stream.frame(step))
            .map_err(|e| CliError::new(e.to_string()))?;
        if let Some(report) = report {
            triggers.push(step);
            let severity = report
                .severity
                .map(|s| s.as_str())
                .unwrap_or("uncategorized");
            let rap = report
                .raps
                .first()
                .map(|r| r.combination.to_string())
                .unwrap_or_else(|| "(none)".to_string());
            writeln!(
                out,
                "step {step}: {severity} detection, score {:.1}σ, top RAP {rap}",
                report.detection.as_ref().map(|d| d.score).unwrap_or(0.0)
            )
            .map_err(io_err)?;
        }
    }

    let windows: Vec<(usize, usize)> = stream
        .injections()
        .iter()
        .map(|inj| (inj.step, inj.duration))
        .collect();
    let outcome = evaluate_detection(&windows, &triggers);
    write!(out, "{}", outcome.table()).map_err(io_err)?;
    writeln!(
        out,
        "recall {:.3}, precision {:.3}, false triggers {}, mean latency {:.1} steps",
        outcome.recall(),
        outcome.precision(),
        outcome.false_triggers.len(),
        outcome.mean_latency()
    )
    .map_err(io_err)?;

    if outcome.recall() < args.min_recall {
        return Err(CliError::new(format!(
            "detection gate failed: recall {:.3} < required {}",
            outcome.recall(),
            args.min_recall
        )));
    }
    if outcome.false_triggers.len() > args.max_false_triggers {
        return Err(CliError::new(format!(
            "detection gate failed: {} false triggers > allowed {}",
            outcome.false_triggers.len(),
            args.max_false_triggers
        )));
    }
    Ok(())
}

/// The streaming operations demo: play the simulator, inject a failure,
/// and report every alarm the pipeline raises.
fn simulate(
    steps: usize,
    failure_at: usize,
    seed: u64,
    rap: Option<&str>,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    use cdnsim::{CdnTopology, FailureInjector, TrafficConfig, TrafficModel};
    use pipeline::{LocalizationPipeline, PipelineConfig};
    use timeseries::MovingAverage;

    let topology = CdnTopology::small(seed);
    let schema = topology.schema().clone();
    let model = TrafficModel::new(topology, TrafficConfig::default(), seed);
    let truth = match rap {
        Some(spec) => schema.parse_combination(spec)?,
        None => schema.parse_combination("location=L4")?,
    };
    writeln!(
        out,
        "simulating {steps} steps; failure {truth} injected at step {failure_at} (seed {seed})"
    )
    .map_err(io_err)?;

    let mut pipe = LocalizationPipeline::new(
        PipelineConfig {
            history_len: 60,
            warmup: 15,
            alarm_threshold: 0.08,
            leaf_threshold: 0.3,
            k: 3,
            ..PipelineConfig::default()
        },
        MovingAverage::new(10),
        RapMinerLocalizer::default(),
    );
    let injector = FailureInjector::new(0.5, 0.9);
    let mut alarms = 0usize;
    for step in 0..steps {
        let minute = 2 * 24 * 60 + step;
        let mut snapshot = model.snapshot(minute);
        if step >= failure_at {
            injector.inject(&mut snapshot, std::slice::from_ref(&truth), minute as u64);
        }
        let report = pipe
            .observe(&snapshot)
            .map_err(|e| CliError::new(e.to_string()))?;
        if let Some(report) = report {
            writeln!(out, "{}", report.summary()).map_err(io_err)?;
            alarms += 1;
            if alarms >= 3 {
                writeln!(out, "(stopping after three alarms)").map_err(io_err)?;
                break;
            }
        }
    }
    if alarms == 0 {
        writeln!(out, "no alarm fired in {steps} steps").map_err(io_err)?;
    }
    Ok(())
}

fn io_err(e: std::io::Error) -> CliError {
    CliError::new(format!("i/o error: {e}"))
}

fn generate(
    dataset: &str,
    dir: &str,
    failures: usize,
    cases_per_group: usize,
    seed: u64,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    let ds = match dataset {
        "rapmd" => RapmdGenerator::new(RapmdConfig {
            num_failures: failures,
            ..RapmdConfig::default()
        })
        .generate(seed),
        "squeeze" => SqueezeGenerator::new(SqueezeGenConfig {
            cases_per_group,
            ..SqueezeGenConfig::default()
        })
        .generate(seed),
        other => {
            return Err(CliError::new(format!(
                "unknown dataset `{other}` (expected `squeeze` or `rapmd`)"
            )))
        }
    };
    save_dataset(&ds, Path::new(dir))?;
    writeln!(
        out,
        "wrote {} cases of `{}` (seed {seed}) to {dir}",
        ds.cases.len(),
        ds.name
    )
    .map_err(io_err)?;
    Ok(())
}

/// Resolve a method by name, applying RAPMiner threshold overrides and
/// the intra-frame thread count (`0` = machine width, `1` = serial).
fn resolve_method(
    name: &str,
    t_cp: Option<f64>,
    t_conf: Option<f64>,
    threads: usize,
) -> Result<Box<dyn Localizer>, CliError> {
    if name == "rapminer" {
        let mut config = Config::new().with_threads(threads);
        if let Some(v) = t_cp {
            config = config
                .with_t_cp(v)
                .map_err(|e| CliError::new(e.to_string()))?;
        }
        if let Some(v) = t_conf {
            config = config
                .with_t_conf(v)
                .map_err(|e| CliError::new(e.to_string()))?;
        }
        return Ok(Box::new(RapMinerLocalizer::with_config(config)));
    }
    if t_cp.is_some() || t_conf.is_some() {
        return Err(CliError::new(
            "--t-cp/--t-conf only apply to --method rapminer",
        ));
    }
    all_localizers()
        .into_iter()
        .find(|m| m.name() == name)
        .ok_or_else(|| {
            CliError::new(format!(
                "unknown method `{name}`; run `rapminer methods` for the list"
            ))
        })
}

#[allow(clippy::too_many_arguments)]
fn localize(
    input: &str,
    method: &str,
    k: usize,
    t_cp: Option<f64>,
    t_conf: Option<f64>,
    detect_threshold: f64,
    explain: bool,
    stats: bool,
    threads: usize,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    let file = std::fs::File::open(input)
        .map_err(|e| CliError::new(format!("cannot open {input}: {e}")))?;
    let mut frame = read_frame_csv(std::io::BufReader::new(file))?;
    if frame.labels().is_none() {
        // no label column: detect with the Eq. 4 deviation threshold
        let eps = 1e-9;
        frame.label_with(|v, f| ((f - v) / (f + eps)).abs() > detect_threshold);
        writeln!(
            out,
            "(no label column; detected {} anomalous of {} leaves at |Dev| > {detect_threshold})",
            frame.num_anomalous(),
            frame.num_rows()
        )
        .map_err(io_err)?;
    }
    if explain {
        if method != "rapminer" {
            return Err(CliError::new("--explain only applies to --method rapminer"));
        }
        let mut config = Config::new();
        if let Some(v) = t_cp {
            config = config
                .with_t_cp(v)
                .map_err(|e| CliError::new(e.to_string()))?;
        }
        let outcome = rapminer::RapMiner::with_config(config)
            .analyze(&frame)
            .map_err(|e| CliError::new(e.to_string()))?;
        let mut table = Table::new(["attribute", "classification power", "verdict"]);
        for (attr, cp) in &outcome.kept {
            table.row([
                frame.schema().attribute(*attr).name().to_string(),
                format!("{cp:.6}"),
                "kept".to_string(),
            ]);
        }
        for (attr, cp) in &outcome.deleted {
            table.row([
                frame.schema().attribute(*attr).name().to_string(),
                format!("{cp:.6}"),
                "redundant".to_string(),
            ]);
        }
        write!(out, "{table}").map_err(io_err)?;
    }
    let localizer = resolve_method(method, t_cp, t_conf, threads)?;
    let explained = localizer.localize_explained(&frame, k)?;
    if stats {
        match &explained.trace {
            Some(trace) => {
                let s = &trace.stats;
                writeln!(
                    out,
                    "search stats: {} attrs deleted, {} cuboids visited, \
                     {} combinations visited, {} candidates found, early stop: {}",
                    s.attrs_deleted,
                    s.cuboids_visited,
                    s.combos_visited,
                    s.candidates_found,
                    s.early_stopped
                )
                .map_err(io_err)?;
            }
            None => {
                writeln!(
                    out,
                    "(--stats: method `{method}` reports no search statistics)"
                )
                .map_err(io_err)?;
            }
        }
    }
    let results = explained.results;
    if results.is_empty() {
        writeln!(out, "no root anomaly patterns found").map_err(io_err)?;
        return Ok(());
    }
    let mut table = Table::new(["rank", "root anomaly pattern", "score"]);
    for (i, r) in results.iter().enumerate() {
        table.row([
            (i + 1).to_string(),
            r.combination.to_string(),
            format!("{:.4}", r.score),
        ]);
    }
    write!(out, "{table}").map_err(io_err)?;
    Ok(())
}

fn evaluate(
    dir: &str,
    protocol: &str,
    ks: &[usize],
    method: Option<&str>,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    let dataset = load_dataset(Path::new(dir))?;
    let methods: Vec<Box<dyn Localizer>> = match method {
        None => all_localizers(),
        Some(name) => vec![resolve_method(name, None, None, 0)?],
    };
    writeln!(
        out,
        "dataset `{}`: {} cases",
        dataset.name,
        dataset.cases.len()
    )
    .map_err(io_err)?;
    match protocol {
        "rc" => {
            let mut headers = vec!["method".to_string()];
            headers.extend(ks.iter().map(|k| format!("RC@{k}")));
            headers.push("mean seconds".to_string());
            let mut table = Table::new(headers);
            for m in &methods {
                let outcome = evaluate_rc(m.as_ref(), &dataset.cases, ks);
                let mut row = vec![m.name().to_string()];
                row.extend(outcome.rc.iter().map(|(_, rc)| format!("{rc:.3}")));
                row.push(format!("{:.4}", outcome.mean_seconds));
                table.row(row);
            }
            write!(out, "{table}").map_err(io_err)?;
        }
        "f1" => {
            let mut table = Table::new(["method", "precision", "recall", "F1", "mean seconds"]);
            for m in &methods {
                let outcome = evaluate_f1(m.as_ref(), &dataset.cases);
                table.row([
                    m.name().to_string(),
                    format!("{:.3}", outcome.precision),
                    format!("{:.3}", outcome.recall),
                    format!("{:.3}", outcome.f1),
                    format!("{:.4}", outcome.mean_seconds),
                ]);
            }
            write!(out, "{table}").map_err(io_err)?;
        }
        other => {
            return Err(CliError::new(format!(
                "unknown protocol `{other}` (expected `rc` or `f1`)"
            )))
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Args;

    fn run_to_string(argv: &[&str]) -> Result<String, CliError> {
        let args = Args::parse(argv.iter().copied()).expect("parse");
        let mut buf = Vec::new();
        run(&args, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf8"))
    }

    #[test]
    fn help_and_methods() {
        let help = run_to_string(&["help"]).unwrap();
        assert!(help.contains("USAGE"));
        let methods = run_to_string(&["methods"]).unwrap();
        assert!(methods.contains("rapminer"));
        assert!(methods.contains("squeeze"));
        assert!(methods.contains("hotspot"));
    }

    #[test]
    fn generate_localize_evaluate_roundtrip() {
        let dir = std::env::temp_dir().join(format!("rapminer_cli_{}", std::process::id()));
        let dir_s = dir.to_str().unwrap().to_string();
        let msg = run_to_string(&[
            "generate",
            "--dataset",
            "squeeze",
            "--out",
            &dir_s,
            "--cases-per-group",
            "1",
            "--seed",
            "5",
        ])
        .unwrap();
        assert!(msg.contains("9 cases"));

        // localize one generated case
        let case_csv = dir.join("squeeze_d1_r1_000.csv");
        let out = run_to_string(&[
            "localize",
            "--input",
            case_csv.to_str().unwrap(),
            "--k",
            "2",
        ])
        .unwrap();
        assert!(out.contains("root anomaly pattern"), "got: {out}");

        // evaluate the directory with one method
        let eval_out = run_to_string(&[
            "evaluate",
            "--dir",
            &dir_s,
            "--protocol",
            "f1",
            "--method",
            "rapminer",
        ])
        .unwrap();
        assert!(eval_out.contains("| rapminer |"), "got: {eval_out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulate_reports_alarms() {
        let out = run_to_string(&[
            "simulate",
            "--steps",
            "40",
            "--failure-at",
            "25",
            "--seed",
            "404",
        ])
        .unwrap();
        assert!(out.contains("injected at step 25"), "got: {out}");
        assert!(out.contains("top RAP (L4"), "got: {out}");
    }

    #[test]
    fn simulate_accepts_custom_rap() {
        let out = run_to_string(&[
            "simulate",
            "--steps",
            "40",
            "--failure-at",
            "25",
            "--rap",
            "website=Site2",
        ])
        .unwrap();
        assert!(out.contains("(*, *, *, Site2)"), "got: {out}");
    }

    #[test]
    fn unknown_method_is_reported() {
        let err = run_to_string(&["localize", "--input", "x.csv", "--method", "zzz"]);
        // file open happens first; use an existing file to reach method
        // resolution — simpler: the error message either mentions the file
        // or the method, both are user-facing failures
        assert!(err.is_err());
    }

    #[test]
    fn threshold_overrides_rejected_for_other_methods() {
        assert!(resolve_method("squeeze", Some(0.1), None, 0).is_err());
        assert!(resolve_method("rapminer", Some(0.1), Some(0.9), 8).is_ok());
        assert!(resolve_method("nope", None, None, 0).is_err());
    }

    #[test]
    fn localize_explain_prints_cp_breakdown() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("rapminer_cli_explain_{}.csv", std::process::id()));
        std::fs::write(
            &path,
            "a,b,real,predict,label\n\
             a1,b1,1.0,10.0,1\n\
             a1,b2,2.0,11.0,1\n\
             a2,b1,10.0,10.0,0\n\
             a2,b2,11.0,11.0,0\n",
        )
        .unwrap();
        let out = run_to_string(&[
            "localize",
            "--input",
            path.to_str().unwrap(),
            "--explain",
            "true",
        ])
        .unwrap();
        assert!(out.contains("classification power"), "got: {out}");
        assert!(out.contains("redundant"), "got: {out}");
        assert!(out.contains("kept"), "got: {out}");
        // explain on a non-rapminer method is refused
        let err = run_to_string(&[
            "localize",
            "--input",
            path.to_str().unwrap(),
            "--method",
            "squeeze",
            "--explain",
            "true",
        ]);
        assert!(err.is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn localize_stats_prints_search_counters() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("rapminer_cli_stats_{}.csv", std::process::id()));
        std::fs::write(
            &path,
            "a,b,real,predict,label\n\
             a1,b1,1.0,10.0,1\n\
             a1,b2,2.0,11.0,1\n\
             a2,b1,10.0,10.0,0\n\
             a2,b2,11.0,11.0,0\n",
        )
        .unwrap();
        let out = run_to_string(&[
            "localize",
            "--input",
            path.to_str().unwrap(),
            "--stats",
            "true",
        ])
        .unwrap();
        assert!(out.contains("search stats:"), "got: {out}");
        assert!(out.contains("cuboids visited"), "got: {out}");
        assert!(out.contains("early stop:"), "got: {out}");
        // methods without search statistics degrade gracefully
        let out = run_to_string(&[
            "localize",
            "--input",
            path.to_str().unwrap(),
            "--method",
            "squeeze",
            "--stats",
            "true",
        ])
        .unwrap();
        assert!(out.contains("no search statistics"), "got: {out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn localize_detects_when_unlabelled() {
        // write an unlabelled CSV with an obvious anomaly
        let dir = std::env::temp_dir();
        let path = dir.join(format!("rapminer_cli_case_{}.csv", std::process::id()));
        std::fs::write(
            &path,
            "a,b,real,predict\n\
             a1,b1,1.0,10.0\n\
             a1,b2,2.0,11.0\n\
             a2,b1,10.0,10.0\n\
             a2,b2,11.0,11.0\n",
        )
        .unwrap();
        let out = run_to_string(&["localize", "--input", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("detected 2 anomalous"), "got: {out}");
        assert!(out.contains("(a1, *)"), "got: {out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_boots_and_reports_listeners() {
        let args = Args::parse([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--metrics-listen",
            "127.0.0.1:0",
            "--shards",
            "2",
        ])
        .unwrap();
        let mut out = Vec::new();
        let handle = serve_start(&args.command, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("rapd listening on 127.0.0.1:"), "got: {text}");
        assert!(text.contains("/metrics"), "got: {text}");
        handle.shutdown();
    }

    #[test]
    fn detect_replays_deterministically_and_gates() {
        let argv = [
            "detect",
            "--steps",
            "240",
            "--warmup",
            "40",
            "--injections",
            "3",
            "--seed",
            "7",
        ];
        let first = run_to_string(&argv).unwrap();
        assert!(first.contains("replaying 240 steps"), "got: {first}");
        assert!(first.contains("injection_step"), "got: {first}");
        assert!(first.contains("recall "), "got: {first}");
        // Deterministic: a second identical replay is byte-identical.
        let second = run_to_string(&argv).unwrap();
        assert_eq!(first, second);
        // An impossible recall gate deterministically fails the run.
        let mut gated = argv.to_vec();
        gated.extend(["--min-recall", "1.1"]);
        let err = run_to_string(&gated).expect_err("gate must fail");
        assert!(err.to_string().contains("detection gate failed"), "{err}");
    }

    #[test]
    fn serve_boots_in_detect_mode() {
        let args = Args::parse([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--metrics-listen",
            "127.0.0.1:0",
            "--detect",
            "true",
            "--detect-threshold",
            "4.5",
        ])
        .unwrap();
        let mut out = Vec::new();
        let handle = serve_start(&args.command, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("detect mode"), "got: {text}");
        assert!(text.contains("4.5σ"), "got: {text}");
        handle.shutdown();
    }

    #[test]
    fn debug_client_round_trips_against_live_daemon() {
        let args = Args::parse([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--metrics-listen",
            "127.0.0.1:0",
            "--shards",
            "1",
        ])
        .unwrap();
        let mut out = Vec::new();
        let handle = serve_start(&args.command, &mut out).unwrap();
        let addr = handle.ingest_addr().to_string();

        let reply = run_to_string(&["debug", "--addr", &addr]).unwrap();
        assert!(reply.contains("\"type\":\"debug\""), "got: {reply}");
        assert!(reply.contains("\"version\""), "got: {reply}");
        assert!(reply.contains("\"queue_depths\""), "got: {reply}");

        // tenant filter is accepted (no such tenant -> empty tenants array)
        let scoped = run_to_string(&["debug", "--addr", &addr, "--tenant", "nope"]).unwrap();
        assert!(scoped.contains("\"tenants\":[]"), "got: {scoped}");
        handle.shutdown();

        // a dead endpoint is a user-facing error, not a panic
        let err = run_to_string(&["debug", "--addr", &addr]).expect_err("must fail");
        assert!(err.to_string().contains("cannot connect"), "{err}");
    }

    #[test]
    fn stats_and_shutdown_clients_round_trip() {
        let args = Args::parse([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--metrics-listen",
            "127.0.0.1:0",
            "--shards",
            "1",
        ])
        .unwrap();
        let mut out = Vec::new();
        let handle = serve_start(&args.command, &mut out).unwrap();
        let addr = handle.ingest_addr().to_string();

        let reply = run_to_string(&["stats", "--addr", &addr]).unwrap();
        assert!(reply.contains("\"type\":\"stats\""), "got: {reply}");
        assert!(reply.contains("\"wal_depth\""), "got: {reply}");

        // the shutdown verb drains the daemon and unblocks the serve loop
        let reply = run_to_string(&["shutdown", "--addr", &addr]).unwrap();
        assert!(reply.contains("\"draining\":true"), "got: {reply}");
        handle.wait_for_drain();
        handle.shutdown();
    }

    #[test]
    fn serve_rejects_bad_config() {
        let args = Args::parse(["serve", "--shards", "0"]).unwrap();
        let mut out = Vec::new();
        let err = match serve_start(&args.command, &mut out) {
            Err(e) => e,
            Ok(_) => panic!("zero shards must be rejected"),
        };
        assert!(err.to_string().contains("shards"), "got: {err}");
    }
}
