use std::process::ExitCode;

use rapminer_cli::{run, Args};

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    match run(&args, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
