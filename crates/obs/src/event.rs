//! Leveled structured events rendered as JSON lines.
//!
//! Events are point-in-time records (a span is an interval). Each event is
//! rendered as one JSON object per line and pushed to the process-global
//! sink installed via [`install_sink`] (rapd's `--log-json` installs
//! stderr). With no sink installed, events are dropped after the level
//! check — emitting is then just two relaxed atomic loads.
//!
//! Line schema:
//!
//! ```json
//! {"ts_micros":1234,"level":"info","target":"rapd.shard","msg":"incident",
//!  "span":17,"trace":12,"frame":"edge-0000002a-1754700000123",
//!  "fields":{"tenant":"edge","raps":2}}
//! ```
//!
//! `span`/`trace` are present only when the emitting thread has an open
//! span; `frame` only inside a [`crate::frame::frame_scope`]; `fields`
//! only when the event carries fields. When the emitting thread has a
//! registered flight recorder ([`crate::recorder`]), the rendered line is
//! also pushed into its ring — even with no global sink installed.

use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::span::{current_span_id, current_trace_id, micros_since_start};
use crate::value::{write_json_string, Value};

/// Event severity, ordered from most to least verbose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// High-volume diagnostics (per-layer, per-candidate detail).
    Debug = 0,
    /// Normal operational signal (incidents, lifecycle).
    Info = 1,
    /// Degraded but continuing (queue drops, parse failures).
    Warn = 2,
    /// A request or component failed.
    Error = 3,
}

impl Level {
    /// The lowercase name used on the wire.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Debug,
            1 => Level::Info,
            2 => Level::Warn,
            _ => Level::Error,
        }
    }
}

static MIN_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

fn sink() -> &'static Mutex<Option<Box<dyn Write + Send>>> {
    static SINK: OnceLock<Mutex<Option<Box<dyn Write + Send>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Set the minimum level an event needs to reach the sink.
pub fn set_min_level(level: Level) {
    MIN_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current minimum level.
pub fn min_level() -> Level {
    Level::from_u8(MIN_LEVEL.load(Ordering::Relaxed))
}

/// Install the process-global event sink (e.g. stderr, a file, a test
/// buffer), replacing any previous sink. Each event is written as one
/// JSON line and flushed.
pub fn install_sink(sink_impl: Box<dyn Write + Send>) {
    *sink().lock().expect("event sink poisoned") = Some(sink_impl);
}

/// Remove the sink; subsequent events are dropped after the level check.
pub fn remove_sink() {
    *sink().lock().expect("event sink poisoned") = None;
}

/// Whether a sink is currently installed.
pub fn sink_installed() -> bool {
    sink().lock().expect("event sink poisoned").is_some()
}

/// Whether an event at `level` would actually be delivered somewhere (a
/// sink or this thread's flight recorder). Call-site guard for argument
/// construction: building an event's fields often allocates
/// (`to_string`, formatting), and that work is wasted when the event is
/// level-filtered — on hot paths, gate on this instead of
/// [`crate::enabled`] so a daemon running at the default `info` level
/// pays nothing for its `debug` call sites.
pub fn event_enabled(level: Level) -> bool {
    !cfg!(feature = "off")
        && crate::span::enabled()
        && level >= min_level()
        && (crate::recorder::active() || sink_installed())
}

/// Emit a structured event at `level` from `target` (a dotted component
/// path, e.g. `"rapd.shard"`). Fields are `(key, value)` pairs rendered
/// under `"fields"`. Dropped unless tracing is enabled, `level` clears the
/// minimum, and a sink is installed.
pub fn event(level: Level, target: &str, msg: &str, fields: &[(&str, Value)]) {
    if cfg!(feature = "off") || !crate::span::enabled() || level < min_level() {
        return;
    }
    // Events reach the thread's flight ring even with no global sink, so
    // blackbox dumps have context on quiet (non --log-json) daemons.
    let recorder_active = crate::recorder::active();
    let mut guard = sink().lock().expect("event sink poisoned");
    if guard.is_none() && !recorder_active {
        return;
    }
    let line = render_line(level, target, msg, fields);
    if let Some(out) = guard.as_mut() {
        // A broken sink (closed pipe) must never take down the caller.
        let _ = out.write_all(line.as_bytes());
        let _ = out.write_all(b"\n");
        let _ = out.flush();
    }
    drop(guard);
    if recorder_active {
        crate::recorder::record(&line);
    }
}

fn render_line(level: Level, target: &str, msg: &str, fields: &[(&str, Value)]) -> String {
    let mut line = String::with_capacity(96);
    line.push_str("{\"ts_micros\":");
    line.push_str(&micros_since_start().to_string());
    line.push_str(",\"level\":\"");
    line.push_str(level.as_str());
    line.push_str("\",\"target\":");
    write_json_string(target, &mut line);
    line.push_str(",\"msg\":");
    write_json_string(msg, &mut line);
    if let Some(span) = current_span_id() {
        line.push_str(",\"span\":");
        line.push_str(&span.to_string());
    }
    if let Some(trace) = current_trace_id() {
        line.push_str(",\"trace\":");
        line.push_str(&trace.to_string());
    }
    if let Some(frame) = crate::frame::current_frame() {
        line.push_str(",\"frame\":");
        write_json_string(&frame, &mut line);
    }
    if !fields.is_empty() {
        line.push_str(",\"fields\":{");
        for (i, (key, value)) in fields.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            write_json_string(key, &mut line);
            line.push(':');
            value.write_json(&mut line);
        }
        line.push('}');
    }
    line.push('}');
    line
}

/// Emit a `Debug` event.
pub fn debug(target: &str, msg: &str, fields: &[(&str, Value)]) {
    event(Level::Debug, target, msg, fields);
}

/// Emit an `Info` event.
pub fn info(target: &str, msg: &str, fields: &[(&str, Value)]) {
    event(Level::Info, target, msg, fields);
}

/// Emit a `Warn` event.
pub fn warn(target: &str, msg: &str, fields: &[(&str, Value)]) {
    event(Level::Warn, target, msg, fields);
}

/// Emit an `Error` event.
pub fn error(target: &str, msg: &str, fields: &[(&str, Value)]) {
    event(Level::Error, target, msg, fields);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A sink that appends into a shared buffer for assertions.
    #[derive(Clone)]
    struct Capture(Arc<StdMutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn renders_span_ids_and_fields() {
        let _gate = lock();
        crate::span::set_enabled(true);
        let buf = Arc::new(StdMutex::new(Vec::new()));
        install_sink(Box::new(Capture(buf.clone())));
        set_min_level(Level::Debug);
        {
            let s = crate::span::span("parent");
            info(
                "rapd.shard",
                "incident",
                &[("tenant", Value::from("edge")), ("raps", Value::from(2u64))],
            );
            let line = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
            assert!(line.contains("\"level\":\"info\""), "{line}");
            assert!(line.contains("\"target\":\"rapd.shard\""), "{line}");
            assert!(
                line.contains(&format!("\"span\":{}", s.id().unwrap())),
                "{line}"
            );
            assert!(
                line.contains("\"fields\":{\"tenant\":\"edge\",\"raps\":2}"),
                "{line}"
            );
            assert!(line.ends_with("}\n"), "{line}");
        }
        remove_sink();
        set_min_level(Level::Info);
    }

    #[test]
    fn level_filter_drops_below_minimum() {
        let _gate = lock();
        crate::span::set_enabled(true);
        let buf = Arc::new(StdMutex::new(Vec::new()));
        install_sink(Box::new(Capture(buf.clone())));
        set_min_level(Level::Warn);
        info("t", "dropped", &[]);
        warn("t", "kept", &[]);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert!(!text.contains("dropped"));
        assert!(text.contains("kept"));
        remove_sink();
        set_min_level(Level::Info);
    }

    #[test]
    fn event_enabled_mirrors_the_delivery_conditions() {
        let _gate = lock();
        crate::span::set_enabled(true);
        remove_sink();
        set_min_level(Level::Info);
        // no sink, no recorder: nothing would be delivered
        assert!(!event_enabled(Level::Info));
        let buf = Arc::new(StdMutex::new(Vec::new()));
        install_sink(Box::new(Capture(buf.clone())));
        assert!(event_enabled(Level::Info));
        // level-filtered call sites must not pay for argument construction
        assert!(!event_enabled(Level::Debug));
        set_min_level(Level::Debug);
        assert!(event_enabled(Level::Debug));
        set_min_level(Level::Info);
        // tracing disabled wins over everything
        crate::span::set_enabled(false);
        assert!(!event_enabled(Level::Error));
        crate::span::set_enabled(true);
        remove_sink();
        // a flight recorder alone is a delivery target
        let rec = crate::recorder::register("event-enabled-test", 4);
        assert!(event_enabled(Level::Info));
        drop(rec);
        assert!(!event_enabled(Level::Info));
    }

    #[test]
    fn frame_context_is_stamped_on_lines() {
        let _gate = lock();
        crate::span::set_enabled(true);
        let buf = Arc::new(StdMutex::new(Vec::new()));
        install_sink(Box::new(Capture(buf.clone())));
        let id = crate::frame::FrameId::mint("edge");
        {
            let _scope = crate::frame::frame_scope(&id);
            info("t", "inside", &[]);
        }
        info("t", "outside", &[]);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let inside = text.lines().find(|l| l.contains("inside")).unwrap();
        let outside = text.lines().find(|l| l.contains("outside")).unwrap();
        assert!(
            inside.contains(&format!("\"frame\":\"{}\"", id.as_str())),
            "{inside}"
        );
        assert!(!outside.contains("\"frame\""), "{outside}");
        remove_sink();
    }

    #[test]
    fn events_reach_the_flight_recorder_without_a_sink() {
        let _gate = lock();
        crate::span::set_enabled(true);
        remove_sink();
        let _rec = crate::recorder::register("event-tee-test", 8);
        warn("t", "recorded without sink", &[("k", Value::from(1u64))]);
        let snap = crate::recorder::snapshot()
            .into_iter()
            .find(|s| s.name == "event-tee-test")
            .expect("ring visible");
        assert_eq!(snap.lines.len(), 1);
        assert!(snap.lines[0].contains("recorded without sink"));
        assert!(snap.lines[0].contains("\"level\":\"warn\""));
    }

    #[test]
    fn no_sink_is_a_quiet_no_op() {
        let _gate = lock();
        remove_sink();
        // Must not panic or block.
        error("t", "nobody listening", &[("k", Value::from(1u64))]);
        assert!(!sink_installed());
    }
}
