//! Span-based tracing: a thread-local stack of active spans, monotonic
//! timing, and a process-global bounded ring buffer of completed spans.
//!
//! A span is opened with [`span`], carries structured fields, and is
//! closed by dropping its [`SpanGuard`]. Completed spans land in the ring
//! (newest evicts oldest), where [`recent_spans`] — and rapd's `trace`
//! control verb — can read them back without any I/O on the hot path.
//!
//! Cost model: an *open + close* is two `Instant::now()` calls, one
//! thread-local push/pop, and one mutex-guarded ring push. With tracing
//! disabled ([`set_enabled`]`(false)` or the crate's `off` feature) a span
//! is a single relaxed atomic load and no allocation.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::value::{write_json_string, Value};

/// Default number of completed spans retained in the ring. Kept modest
/// on purpose: every retained record pins a fields `Vec` (and any string
/// values) on the heap, and a large ring measurably degrades the
/// traced workload's own allocation locality — evicted blocks go cold
/// before the allocator reuses them. 256 matches the flight recorder's
/// per-worker depth and keeps steady-state tracing overhead ~1% on the
/// localization hot path (see the `obs_overhead` smoke test).
pub const DEFAULT_RING_CAPACITY: usize = 256;

static ENABLED: AtomicBool = AtomicBool::new(true);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// The process-wide monotonic epoch all span/event timestamps count from.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed since the first obs call in this process.
pub fn micros_since_start() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// One completed span as stored in the ring.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique (process-wide) span id.
    pub id: u64,
    /// The enclosing span's id, if this span was nested.
    pub parent: Option<u64>,
    /// The root span's id of this span's stack (equals `id` for roots).
    pub trace: u64,
    /// Static span name (e.g. `"rapminer.search"`).
    pub name: &'static str,
    /// Start time in microseconds since the process epoch.
    pub start_micros: u64,
    /// Wall-clock duration in microseconds.
    pub elapsed_micros: u64,
    /// Structured fields recorded while the span was open.
    pub fields: Vec<(&'static str, Value)>,
    /// The frame-correlation token open on the thread when the span was
    /// opened (see [`crate::frame`]); `None` outside a frame scope.
    pub frame: Option<Arc<str>>,
}

impl SpanRecord {
    /// Look up a recorded field by key.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Assign `source` into `self`, reusing `self`'s existing heap
    /// allocations (the fields `Vec`, the frame `Arc`) where possible.
    /// The flight recorder's steady-state eviction path: a full ring
    /// records spans without growing the allocator's working set.
    pub(crate) fn clone_from_record(&mut self, source: &SpanRecord) {
        self.id = source.id;
        self.parent = source.parent;
        self.trace = source.trace;
        self.name = source.name;
        self.start_micros = source.start_micros;
        self.elapsed_micros = source.elapsed_micros;
        self.fields.clone_from(&source.fields);
        self.frame.clone_from(&source.frame);
    }

    /// Render this span as one JSON line (the flight recorder's and the
    /// blackbox dump's span encoding).
    pub fn render_line(&self) -> String {
        let mut line = String::with_capacity(96);
        line.push_str("{\"kind\":\"span\",\"name\":");
        write_json_string(self.name, &mut line);
        line.push_str(",\"id\":");
        line.push_str(&self.id.to_string());
        if let Some(parent) = self.parent {
            line.push_str(",\"parent\":");
            line.push_str(&parent.to_string());
        }
        line.push_str(",\"trace\":");
        line.push_str(&self.trace.to_string());
        if let Some(frame) = &self.frame {
            line.push_str(",\"frame\":");
            write_json_string(frame, &mut line);
        }
        line.push_str(",\"start_micros\":");
        line.push_str(&self.start_micros.to_string());
        line.push_str(",\"elapsed_micros\":");
        line.push_str(&self.elapsed_micros.to_string());
        if !self.fields.is_empty() {
            line.push_str(",\"fields\":{");
            for (i, (key, value)) in self.fields.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                write_json_string(key, &mut line);
                line.push(':');
                value.write_json(&mut line);
            }
            line.push('}');
        }
        line.push('}');
        line
    }
}

struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    trace: u64,
    name: &'static str,
    start: Instant,
    start_micros: u64,
    fields: Vec<(&'static str, Value)>,
    frame: Option<Arc<str>>,
}

thread_local! {
    static STACK: RefCell<Vec<ActiveSpan>> = const { RefCell::new(Vec::new()) };
}

struct Ring {
    buf: VecDeque<SpanRecord>,
    capacity: usize,
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring {
            buf: VecDeque::new(),
            capacity: DEFAULT_RING_CAPACITY,
        })
    })
}

/// Globally enable or disable tracing at runtime. Disabled spans cost one
/// relaxed atomic load; nothing is recorded.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether tracing is currently enabled (and not compiled out).
pub fn enabled() -> bool {
    !cfg!(feature = "off") && ENABLED.load(Ordering::Relaxed)
}

/// Resize the completed-span ring (drops the oldest overflow immediately).
pub fn set_ring_capacity(capacity: usize) {
    let mut ring = ring().lock().expect("span ring poisoned");
    ring.capacity = capacity.max(1);
    while ring.buf.len() > ring.capacity {
        ring.buf.pop_front();
    }
}

/// Discard every completed span (test isolation helper).
pub fn clear_spans() {
    ring().lock().expect("span ring poisoned").buf.clear();
}

/// The most recently completed spans, newest first, at most `limit`.
pub fn recent_spans(limit: usize) -> Vec<SpanRecord> {
    let ring = ring().lock().expect("span ring poisoned");
    ring.buf.iter().rev().take(limit).cloned().collect()
}

/// The id of the innermost open span on this thread, if any.
pub fn current_span_id() -> Option<u64> {
    STACK.with(|stack| stack.borrow().last().map(|s| s.id))
}

/// The trace (root-span) id of the innermost open span on this thread.
pub fn current_trace_id() -> Option<u64> {
    STACK.with(|stack| stack.borrow().last().map(|s| s.trace))
}

/// RAII handle on an open span; dropping it closes the span and commits
/// the record to the ring. Not `Send`: spans close on the thread that
/// opened them (the stack is thread-local).
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    /// `None` when tracing was disabled at open time (inert guard).
    id: Option<u64>,
    /// Keeps the guard `!Send`/`!Sync`.
    _not_send: PhantomData<*const ()>,
}

/// Open a span. Returns an inert guard when tracing is disabled.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            id: None,
            _not_send: PhantomData,
        };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let start_micros = micros_since_start();
    STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let (parent, trace) = match stack.last() {
            Some(top) => (Some(top.id), top.trace),
            None => (None, id),
        };
        stack.push(ActiveSpan {
            id,
            parent,
            trace,
            name,
            start: Instant::now(),
            start_micros,
            fields: Vec::new(),
            frame: crate::frame::current_frame(),
        });
    });
    SpanGuard {
        id: Some(id),
        _not_send: PhantomData,
    }
}

impl SpanGuard {
    /// Attach a structured field to this span (last write wins on a
    /// duplicate key). A no-op on inert guards.
    pub fn record(&self, key: &'static str, value: impl Into<Value>) {
        let Some(id) = self.id else { return };
        let value = value.into();
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(active) = stack.iter_mut().rev().find(|s| s.id == id) {
                match active.fields.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, v)) => *v = value,
                    None => active.fields.push((key, value)),
                }
            }
        });
    }

    /// This span's id (`None` for inert guards).
    pub fn id(&self) -> Option<u64> {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(id) = self.id else { return };
        let record = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards drop LIFO under normal scoping; tolerate out-of-order
            // drops by searching for the matching frame.
            let pos = stack.iter().rposition(|s| s.id == id)?;
            let active = stack.remove(pos);
            Some(SpanRecord {
                id: active.id,
                parent: active.parent,
                trace: active.trace,
                name: active.name,
                start_micros: active.start_micros,
                elapsed_micros: active.start.elapsed().as_micros() as u64,
                fields: active.fields,
                frame: active.frame,
            })
        });
        if let Some(record) = record {
            // tee into this thread's flight ring before the global ring
            // takes ownership; the clone is cheap and rendering waits
            // until a blackbox snapshot actually needs the JSON line
            crate::recorder::record_span(&record);
            let mut ring = ring().lock().expect("span ring poisoned");
            if ring.buf.len() == ring.capacity {
                ring.buf.pop_front();
            }
            ring.buf.push_back(record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the global ring/enabled flag.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn nesting_links_parent_and_trace_ids() {
        let _gate = lock();
        clear_spans();
        set_enabled(true);
        {
            let outer = span("outer");
            outer.record("tenant", "edge");
            {
                let inner = span("inner");
                inner.record("layer", 2usize);
                assert_eq!(current_span_id(), inner.id());
            }
            assert_eq!(current_span_id(), outer.id());
        }
        assert_eq!(current_span_id(), None);
        let spans = recent_spans(2);
        assert_eq!(spans.len(), 2);
        // newest first: outer closed last
        let (outer, inner) = (&spans[0], &spans[1]);
        assert_eq!(outer.name, "outer");
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(inner.trace, outer.id);
        assert_eq!(outer.parent, None);
        assert_eq!(outer.trace, outer.id);
        assert_eq!(outer.field("tenant").and_then(Value::as_str), Some("edge"));
        assert_eq!(inner.field("layer").and_then(Value::as_u64), Some(2));
        assert!(outer.elapsed_micros >= inner.elapsed_micros);
    }

    #[test]
    fn ring_is_bounded_and_newest_first() {
        let _gate = lock();
        clear_spans();
        set_enabled(true);
        set_ring_capacity(3);
        for _ in 0..10 {
            let _s = span("tick");
        }
        let spans = recent_spans(10);
        assert_eq!(spans.len(), 3);
        assert!(spans[0].id > spans[1].id && spans[1].id > spans[2].id);
        set_ring_capacity(DEFAULT_RING_CAPACITY);
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _gate = lock();
        clear_spans();
        set_enabled(false);
        {
            let s = span("invisible");
            assert_eq!(s.id(), None);
            s.record("k", 1usize); // must not panic
            assert_eq!(current_span_id(), None);
        }
        assert!(recent_spans(10).is_empty());
        set_enabled(true);
    }

    #[test]
    fn spans_carry_the_open_frame_context() {
        let _gate = lock();
        clear_spans();
        set_enabled(true);
        let id = crate::frame::FrameId::mint("edge");
        {
            let _scope = crate::frame::frame_scope(&id);
            let s = span("framed");
            s.record("n", 1usize);
        }
        {
            let _s = span("unframed");
        }
        let spans = recent_spans(2);
        assert_eq!(spans[0].name, "unframed");
        assert_eq!(spans[0].frame, None);
        assert_eq!(spans[1].name, "framed");
        assert_eq!(spans[1].frame.as_deref(), Some(id.as_str()));
        let line = spans[1].render_line();
        assert!(line.contains("\"kind\":\"span\""), "{line}");
        assert!(
            line.contains(&format!("\"frame\":\"{}\"", id.as_str())),
            "{line}"
        );
        assert!(line.contains("\"fields\":{\"n\":1}"), "{line}");
    }

    #[test]
    fn duplicate_field_keys_keep_last_value() {
        let _gate = lock();
        clear_spans();
        set_enabled(true);
        {
            let s = span("dup");
            s.record("n", 1usize);
            s.record("n", 2usize);
        }
        let spans = recent_spans(1);
        assert_eq!(spans[0].fields.len(), 1);
        assert_eq!(spans[0].field("n").and_then(Value::as_u64), Some(2));
    }
}
