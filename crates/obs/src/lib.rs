//! Zero-dependency observability substrate for the RAPMiner stack.
//!
//! Two primitives, one contract:
//!
//! - **Spans** ([`span`]) measure intervals. They nest via a thread-local
//!   stack (parent/trace ids are derived automatically), carry structured
//!   [`Value`] fields, and on drop commit a [`SpanRecord`] into a bounded
//!   process-global ring readable via [`recent_spans`] — which is what
//!   rapd's `trace` control verb serves.
//! - **Events** ([`event`], [`info`], …) are point-in-time JSON lines
//!   written to a pluggable sink ([`install_sink`]); each line carries the
//!   emitting thread's current span/trace ids so logs correlate with
//!   spans.
//!
//! Two correlation layers ride on top:
//!
//! - **Frame ids** ([`frame`]): a [`FrameId`] minted per ingested frame
//!   and held open via a thread-local [`frame::frame_scope`]; spans and
//!   events emitted inside the scope carry the frame token, so one grep
//!   ties every sink's records for a frame together.
//! - **Flight recorder** ([`recorder`]): per-worker bounded rings of
//!   recently rendered span/event lines, snapshotted into post-mortem
//!   blackbox dumps.
//!
//! A test-only primitive rides along too: **failpoints** ([`fail`]) —
//! named fault-injection sites compiled to no-ops unless the `fail` cargo
//! feature is on. They live here because this crate sits at the bottom of
//! the dependency stack, so any layer (search, pipeline, daemon) can host
//! a site.
//!
//! Everything is `std`-only, allocation-light, and has two kill switches:
//! [`set_enabled`]`(false)` at runtime (one relaxed atomic load per
//! would-be span/event) and the `off` cargo feature at compile time
//! (spans and events become empty inlineable bodies). The overhead budget
//! — enforced by `scripts/ci.sh` via the `obs_overhead` bench binary — is
//! <5% on end-to-end localization with tracing enabled.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod fail;
pub mod frame;
pub mod recorder;
mod span;
mod value;

pub use event::{
    debug, error, event, event_enabled, info, install_sink, min_level, remove_sink, set_min_level,
    sink_installed, warn, Level,
};
pub use frame::FrameId;
pub use span::{
    clear_spans, current_span_id, current_trace_id, enabled, micros_since_start, recent_spans,
    set_enabled, set_ring_capacity, span, SpanGuard, SpanRecord, DEFAULT_RING_CAPACITY,
};
pub use value::Value;

/// Convenience: time a closure under a named span and return its output.
pub fn timed<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    let _span = span(name);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_runs_closure_and_returns_value() {
        set_enabled(true);
        let out = timed("obs.timed_test", || 41 + 1);
        assert_eq!(out, 42);
    }
}
