//! Field values attached to spans and events.

use std::fmt;

/// A structured field value: the small scalar set every span/event field
/// must fit into so records render losslessly as JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// An unsigned integer (counts, ids).
    U64(u64),
    /// A float (seconds, scores). Non-finite values render as `null`.
    F64(f64),
    /// A string.
    Str(String),
}

impl Value {
    /// The unsigned payload, if this is an integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The float payload (integers widen), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Append this value as a JSON fragment.
    pub(crate) fn write_json(&self, out: &mut String) {
        match self {
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(n) => {
                out.push_str(&n.to_string());
            }
            Value::F64(x) => {
                if x.is_finite() {
                    out.push_str(&format!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(s, out),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::U64(n) => write!(f, "{n}"),
            Value::F64(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::U64(n)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::U64(u64::from(n))
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::U64(n as u64)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::F64(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

/// Append `s` as a JSON string literal (with escapes) to `out`.
pub(crate) fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_accessors() {
        assert_eq!(Value::from(3usize).as_u64(), Some(3));
        assert_eq!(Value::from(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from(7u64).as_f64(), Some(7.0));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(1.0).as_u64(), None);
    }

    #[test]
    fn json_escaping_is_safe() {
        let mut out = String::new();
        Value::from("a\"b\\c\nd\u{1}").write_json(&mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
        let mut out = String::new();
        Value::F64(f64::NAN).write_json(&mut out);
        assert_eq!(out, "null");
    }
}
