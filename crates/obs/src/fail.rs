//! A tiny zero-dependency failpoint harness (the `fail_point!` pattern).
//!
//! Fault-injection sites are named call points compiled into the binary;
//! tests (or an operator via the `RAPD_FAILPOINTS` environment variable)
//! *arm* a site with an [`Action`] — panic, injected error, or sleep —
//! and the site performs it when evaluated. With the `fail` cargo feature
//! disabled (the default) every function here is an inlineable no-op and
//! the registry does not exist, so production builds pay nothing.
//!
//! Sites are evaluated with [`apply`] (panic/sleep in place),
//! [`should_error`] (the caller maps `true` to its own error type), or
//! [`eval`] for full control. A site may be armed for a limited number of
//! activations ([`cfg_times`]) or restricted to a matching tag
//! ([`cfg_tagged`]) — rapd uses tags to fault only one tenant's frames.
//!
//! `RAPD_FAILPOINTS` is read once, on first registry access, with the
//! grammar `name=action[;name=action...]` where `action` is `panic`,
//! `error`, `sleep(MILLIS)`, or `COUNT*action` for a limited arm, e.g.
//! `RAPD_FAILPOINTS="pipeline-panic=2*panic;slow-localize=sleep(50)"`.

/// What an armed failpoint does when its site is evaluated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Panic at the site (exercises `catch_unwind` supervision paths).
    Panic,
    /// Report an injected error; the site maps it to its own error type.
    Error,
    /// Sleep for this many milliseconds before continuing.
    Sleep(u64),
}

#[cfg(feature = "fail")]
mod imp {
    use super::Action;
    use std::collections::HashMap;
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

    #[derive(Debug, Clone)]
    struct FailPoint {
        action: Action,
        /// Remaining activations; `None` means unlimited.
        remaining: Option<u32>,
        /// Only fire when the site's tag matches; `None` matches any tag.
        tag: Option<String>,
    }

    fn registry() -> MutexGuard<'static, HashMap<String, FailPoint>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, FailPoint>>> = OnceLock::new();
        REGISTRY
            .get_or_init(|| {
                let mut map = HashMap::new();
                if let Ok(spec) = std::env::var("RAPD_FAILPOINTS") {
                    seed_from_spec(&mut map, &spec);
                }
                Mutex::new(map)
            })
            .lock()
            // a panicking failpoint may poison the registry by design;
            // the data is still consistent (plain inserts/removes)
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn seed_from_spec(map: &mut HashMap<String, FailPoint>, spec: &str) {
        for entry in spec.split(';').filter(|e| !e.trim().is_empty()) {
            let Some((name, action)) = entry.split_once('=') else {
                continue;
            };
            if let Some((action, remaining)) = parse_action(action.trim()) {
                map.insert(
                    name.trim().to_string(),
                    FailPoint {
                        action,
                        remaining,
                        tag: None,
                    },
                );
            }
        }
    }

    /// Parse `panic`, `error`, `sleep(MILLIS)`, or `COUNT*action`.
    fn parse_action(s: &str) -> Option<(Action, Option<u32>)> {
        if let Some((count, rest)) = s.split_once('*') {
            let count: u32 = count.trim().parse().ok()?;
            let (action, _) = parse_action(rest.trim())?;
            return Some((action, Some(count)));
        }
        match s {
            "panic" => Some((Action::Panic, None)),
            "error" => Some((Action::Error, None)),
            _ => {
                let millis = s.strip_prefix("sleep(")?.strip_suffix(')')?;
                Some((Action::Sleep(millis.trim().parse().ok()?), None))
            }
        }
    }

    /// Arm `name` with `action` for every future evaluation.
    pub fn cfg(name: &str, action: Action) {
        registry().insert(
            name.to_string(),
            FailPoint {
                action,
                remaining: None,
                tag: None,
            },
        );
    }

    /// Arm `name` for at most `times` activations, then it disarms itself.
    pub fn cfg_times(name: &str, action: Action, times: u32) {
        registry().insert(
            name.to_string(),
            FailPoint {
                action,
                remaining: Some(times),
                tag: None,
            },
        );
    }

    /// Arm `name` to fire only when the site passes a matching tag
    /// (see [`apply_tagged`] / [`eval_tagged`]).
    pub fn cfg_tagged(name: &str, action: Action, tag: &str) {
        registry().insert(
            name.to_string(),
            FailPoint {
                action,
                remaining: None,
                tag: Some(tag.to_string()),
            },
        );
    }

    /// Disarm one failpoint.
    pub fn remove(name: &str) {
        registry().remove(name);
    }

    /// Disarm every failpoint (tests call this between scenarios).
    pub fn reset() {
        registry().clear();
    }

    /// Evaluate an untagged site: the armed [`Action`], or `None` when the
    /// site is disarmed (or its activation budget is spent). Each `Some`
    /// return consumes one activation of a [`cfg_times`] arm.
    pub fn eval(name: &str) -> Option<Action> {
        eval_tagged(name, None)
    }

    /// Evaluate a site carrying a tag (e.g. the tenant being processed).
    /// A point armed with [`cfg_tagged`] fires only on a matching tag.
    pub fn eval_tagged(name: &str, tag: Option<&str>) -> Option<Action> {
        let mut map = registry();
        let point = map.get_mut(name)?;
        if let Some(want) = &point.tag {
            if tag != Some(want.as_str()) {
                return None;
            }
        }
        match &mut point.remaining {
            None => Some(point.action.clone()),
            Some(0) => None,
            Some(n) => {
                *n -= 1;
                Some(point.action.clone())
            }
        }
    }

    /// Evaluate and act in place: [`Action::Panic`] panics,
    /// [`Action::Sleep`] sleeps; [`Action::Error`] is a no-op here (use
    /// [`should_error`] at sites that can surface an error).
    pub fn apply(name: &str) {
        act(name, eval(name));
    }

    /// Tagged variant of [`apply`].
    pub fn apply_tagged(name: &str, tag: &str) {
        act(name, eval_tagged(name, Some(tag)));
    }

    fn act(name: &str, action: Option<Action>) {
        match action {
            Some(Action::Panic) => panic!("failpoint '{name}' triggered"),
            Some(Action::Sleep(millis)) => {
                std::thread::sleep(std::time::Duration::from_millis(millis));
            }
            Some(Action::Error) | None => {}
        }
    }

    /// Whether the site is armed with [`Action::Error`] right now.
    pub fn should_error(name: &str) -> bool {
        matches!(eval(name), Some(Action::Error))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        // the registry is process-global; tests share it, so each test
        // uses its own site names and never calls reset()

        #[test]
        fn disarmed_sites_do_nothing() {
            assert_eq!(eval("fail-test-unarmed"), None);
            apply("fail-test-unarmed"); // must not panic
            assert!(!should_error("fail-test-unarmed"));
        }

        #[test]
        fn armed_site_fires_until_removed() {
            cfg("fail-test-err", Action::Error);
            assert!(should_error("fail-test-err"));
            assert!(should_error("fail-test-err"));
            remove("fail-test-err");
            assert!(!should_error("fail-test-err"));
        }

        #[test]
        fn times_budget_is_consumed() {
            cfg_times("fail-test-twice", Action::Error, 2);
            assert!(should_error("fail-test-twice"));
            assert!(should_error("fail-test-twice"));
            assert!(!should_error("fail-test-twice"), "budget spent");
        }

        #[test]
        fn tags_scope_the_blast_radius() {
            cfg_tagged("fail-test-tag", Action::Error, "victim");
            assert_eq!(eval_tagged("fail-test-tag", Some("healthy")), None);
            assert_eq!(eval_tagged("fail-test-tag", None), None);
            assert_eq!(
                eval_tagged("fail-test-tag", Some("victim")),
                Some(Action::Error)
            );
            remove("fail-test-tag");
        }

        #[test]
        #[should_panic(expected = "failpoint 'fail-test-boom' triggered")]
        fn panic_action_panics_with_the_site_name() {
            cfg("fail-test-boom", Action::Panic);
            apply("fail-test-boom");
        }

        #[test]
        fn spec_grammar_parses() {
            assert_eq!(parse_action("panic"), Some((Action::Panic, None)));
            assert_eq!(parse_action("error"), Some((Action::Error, None)));
            assert_eq!(parse_action("sleep(50)"), Some((Action::Sleep(50), None)));
            assert_eq!(parse_action("3*panic"), Some((Action::Panic, Some(3))));
            assert_eq!(parse_action("bogus"), None);
            assert_eq!(parse_action("sleep(x)"), None);
            let mut map = std::collections::HashMap::new();
            seed_from_spec(&mut map, "a=panic; b=2*sleep(5) ;;junk; c");
            assert_eq!(map.len(), 2);
            assert_eq!(map["a"].action, Action::Panic);
            assert_eq!(map["b"].remaining, Some(2));
        }
    }
}

#[cfg(not(feature = "fail"))]
mod imp {
    use super::Action;

    /// No-op: the `fail` feature is disabled.
    #[inline(always)]
    pub fn cfg(_name: &str, _action: Action) {}

    /// No-op: the `fail` feature is disabled.
    #[inline(always)]
    pub fn cfg_times(_name: &str, _action: Action, _times: u32) {}

    /// No-op: the `fail` feature is disabled.
    #[inline(always)]
    pub fn cfg_tagged(_name: &str, _action: Action, _tag: &str) {}

    /// No-op: the `fail` feature is disabled.
    #[inline(always)]
    pub fn remove(_name: &str) {}

    /// No-op: the `fail` feature is disabled.
    #[inline(always)]
    pub fn reset() {}

    /// Always `None`: the `fail` feature is disabled.
    #[inline(always)]
    pub fn eval(_name: &str) -> Option<Action> {
        None
    }

    /// Always `None`: the `fail` feature is disabled.
    #[inline(always)]
    pub fn eval_tagged(_name: &str, _tag: Option<&str>) -> Option<Action> {
        None
    }

    /// No-op: the `fail` feature is disabled.
    #[inline(always)]
    pub fn apply(_name: &str) {}

    /// No-op: the `fail` feature is disabled.
    #[inline(always)]
    pub fn apply_tagged(_name: &str, _tag: &str) {}

    /// Always `false`: the `fail` feature is disabled.
    #[inline(always)]
    pub fn should_error(_name: &str) -> bool {
        false
    }
}

pub use imp::{
    apply, apply_tagged, cfg, cfg_tagged, cfg_times, eval, eval_tagged, remove, reset, should_error,
};
