//! End-to-end frame correlation: [`FrameId`] minting and a per-thread
//! frame context.
//!
//! A `FrameId` is minted once per ingested frame — at rapd's `observe`
//! verb — and threaded through admission, reordering, detection,
//! localization, and every sink the frame can land in. The id renders as
//! one greppable token (`tenant-seq-ingestmillis`), so a single grep over
//! the span log, incident spool, quarantine spool, and blackbox dumps
//! reconstructs the frame's whole life.
//!
//! Because frames hop threads (accept loop → shard worker), the id cannot
//! ride the span stack alone. Instead a worker opens a [`frame_scope`]
//! around each frame it processes; while the scope is open, every span
//! and event emitted on that thread is stamped with the frame token
//! automatically.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::span::micros_since_start;

/// Process-wide monotonic frame sequence (starts at 1; 0 never minted).
static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);

/// The correlation identity of one ingested frame: tenant, a process-wide
/// monotonic sequence number, and the ingest timestamp.
///
/// Clones are cheap (the rendered token is shared), so the id can be
/// carried through queues and stamped on every record the frame touches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameId {
    token: Arc<str>,
    seq: u64,
    ingest_micros: u64,
}

impl FrameId {
    /// Mint the next frame id for `tenant`. The token embeds the tenant,
    /// the hex sequence number, and the wall-clock ingest time in unix
    /// milliseconds; [`ingest_micros`](FrameId::ingest_micros) separately
    /// captures the monotonic ingest instant for latency math.
    pub fn mint(tenant: &str) -> FrameId {
        let seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
        let ingest_micros = micros_since_start();
        let unix_millis = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let token = format!("{tenant}-{seq:08x}-{unix_millis}");
        FrameId {
            token: token.into(),
            seq,
            ingest_micros,
        }
    }

    /// Re-adopt a frame identity minted by an earlier process run, for
    /// WAL replay: the replayed frame keeps its original token (so every
    /// sink record it produces matches the pre-crash run byte for byte)
    /// and its original sequence number (so downstream dedup on the seq
    /// works across the restart). `ingest_micros` restarts on this
    /// process's monotonic clock — latency math never spans processes.
    pub fn adopt(token: &str, seq: u64) -> FrameId {
        FrameId {
            token: token.into(),
            seq,
            ingest_micros: micros_since_start(),
        }
    }

    /// Advance the process-wide mint sequence past `seq`, so ids minted
    /// after a WAL replay never collide with ids recovered from the
    /// journal. Monotonic: a lower `seq` is a no-op.
    pub fn advance_past(seq: u64) {
        NEXT_SEQ.fetch_max(seq.saturating_add(1), Ordering::Relaxed);
    }

    /// The greppable token, e.g. `edge-0000002a-1754700000123`.
    pub fn as_str(&self) -> &str {
        &self.token
    }

    /// The token as a cheaply clonable shared string.
    pub fn token(&self) -> Arc<str> {
        Arc::clone(&self.token)
    }

    /// The process-wide monotonic sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Monotonic ingest instant in microseconds since the process epoch
    /// (the clock [`micros_since_start`] counts on).
    pub fn ingest_micros(&self) -> u64 {
        self.ingest_micros
    }

    /// Seconds elapsed since this frame was minted — the end-to-end
    /// ingest→now latency.
    pub fn elapsed_seconds(&self) -> f64 {
        micros_since_start().saturating_sub(self.ingest_micros) as f64 / 1e6
    }
}

thread_local! {
    /// The stack of frame tokens open on this thread (scopes may nest).
    static CURRENT: RefCell<Vec<Arc<str>>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard holding a frame context open on this thread; spans and
/// events emitted while it lives carry the frame token. Dropping the
/// guard restores the previous context. Not `Send`: the context is
/// thread-local.
#[must_use = "dropping the scope immediately clears the frame context"]
pub struct FrameScope {
    _not_send: PhantomData<*const ()>,
}

/// Open a frame context for `id` on the current thread.
pub fn frame_scope(id: &FrameId) -> FrameScope {
    CURRENT.with(|c| c.borrow_mut().push(id.token()));
    FrameScope {
        _not_send: PhantomData,
    }
}

impl Drop for FrameScope {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// The innermost frame token open on this thread, if any.
pub fn current_frame() -> Option<Arc<str>> {
    CURRENT.with(|c| c.borrow().last().cloned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_ids_are_unique_and_monotonic() {
        let a = FrameId::mint("edge");
        let b = FrameId::mint("edge");
        assert!(b.seq() > a.seq());
        assert_ne!(a.as_str(), b.as_str());
        assert!(a.as_str().starts_with("edge-"));
        assert!(b.ingest_micros() >= a.ingest_micros());
    }

    #[test]
    fn scope_sets_and_restores_the_context() {
        assert_eq!(current_frame(), None);
        let outer = FrameId::mint("t");
        {
            let _s = frame_scope(&outer);
            assert_eq!(current_frame().as_deref(), Some(outer.as_str()));
            let inner = FrameId::mint("t");
            {
                let _i = frame_scope(&inner);
                assert_eq!(current_frame().as_deref(), Some(inner.as_str()));
            }
            assert_eq!(current_frame().as_deref(), Some(outer.as_str()));
        }
        assert_eq!(current_frame(), None);
    }

    #[test]
    fn adopt_preserves_token_and_seq() {
        let id = FrameId::adopt("edge-0000002a-1754700000123", 42);
        assert_eq!(id.as_str(), "edge-0000002a-1754700000123");
        assert_eq!(id.seq(), 42);
    }

    #[test]
    fn advance_past_prevents_seq_reuse() {
        let before = FrameId::mint("t").seq();
        FrameId::advance_past(before + 100);
        assert!(FrameId::mint("t").seq() > before + 100);
        // Lower watermarks never move the sequence backwards.
        FrameId::advance_past(1);
        assert!(FrameId::mint("t").seq() > before + 100);
    }

    #[test]
    fn elapsed_counts_forward() {
        let id = FrameId::mint("t");
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(id.elapsed_seconds() > 0.0);
        assert!(id.elapsed_seconds() < 60.0);
    }
}
