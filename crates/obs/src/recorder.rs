//! Flight recorder: per-worker rings of recent spans and events,
//! snapshotted into post-mortem "blackbox" dumps.
//!
//! A worker thread calls [`register`] once at startup; from then on every
//! span it closes and every event it emits is also pushed into that
//! worker's private ring. Spans are stored as cheap [`SpanRecord`] clones
//! and only rendered to JSON lines when a [`snapshot`] is taken — dumps
//! are rare and rendering on the hot path would dominate the recorder's
//! cost. The ring is bounded (oldest entry evicted) and single-writer:
//! only the owning thread pushes, so the mutex around it is
//! contention-free in normal operation and is only ever contested by a
//! [`snapshot`] taken at dump time.
//!
//! The registry of live rings is process-global; [`snapshot`] collects
//! every worker's recent lines in one call, which is what rapd's blackbox
//! dump writes next to the incident spool when a pipeline panics, a
//! deadline is exceeded, or a circuit breaker opens.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::{Arc, Mutex, OnceLock, PoisonError, Weak};

use crate::span::SpanRecord;

/// Default number of lines each worker ring retains.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// One ring entry: events arrive pre-rendered (their line already exists
/// for the sink), spans are kept structured and rendered only at
/// snapshot time.
enum Entry {
    Rendered(String),
    Span(SpanRecord),
}

impl Entry {
    fn render(&self) -> String {
        match self {
            Entry::Rendered(line) => line.clone(),
            Entry::Span(record) => record.render_line(),
        }
    }
}

struct Ring {
    name: String,
    lines: VecDeque<Entry>,
    capacity: usize,
    /// Entries pushed over the ring's lifetime.
    recorded: u64,
    /// Entries evicted to make room (recorded − retained).
    dropped: u64,
}

impl Ring {
    fn push(&mut self, entry: Entry) {
        self.recorded += 1;
        if self.lines.len() == self.capacity {
            self.lines.pop_front();
            self.dropped += 1;
        }
        self.lines.push_back(entry);
    }

    /// Span fast path: at capacity the evicted slot's allocations (the
    /// fields `Vec`, any `String` values) are recycled via `clone_from`,
    /// so a full ring in steady state records spans without touching the
    /// allocator — this sits on every traced span's close path.
    fn push_span(&mut self, record: &SpanRecord) {
        self.recorded += 1;
        if self.lines.len() == self.capacity {
            self.dropped += 1;
            if let Some(mut slot) = self.lines.pop_front() {
                match &mut slot {
                    Entry::Span(old) => old.clone_from_record(record),
                    other => *other = Entry::Span(record.clone()),
                }
                self.lines.push_back(slot);
                return;
            }
        }
        self.lines.push_back(Entry::Span(record.clone()));
    }
}

fn registry() -> &'static Mutex<Vec<Weak<Mutex<Ring>>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Weak<Mutex<Ring>>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn lock_ring(ring: &Mutex<Ring>) -> std::sync::MutexGuard<'_, Ring> {
    // a panicking owner may poison its ring; the data is still a
    // consistent VecDeque, and post-mortem capture is exactly when we
    // must still read it
    ring.lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<Mutex<Ring>>>> = const { RefCell::new(None) };
}

/// RAII handle on this thread's flight ring; dropping it deregisters the
/// thread (the ring disappears from future snapshots). Not `Send`: the
/// recorder belongs to the thread that registered it.
#[must_use = "dropping the recorder immediately deregisters the thread"]
pub struct Recorder {
    ring: Arc<Mutex<Ring>>,
    _not_send: PhantomData<*const ()>,
}

/// Register the current thread as a flight-recorded worker under `name`,
/// keeping at most `capacity` recent lines (clamped to ≥ 1). Replaces any
/// recorder previously registered on this thread.
pub fn register(name: &str, capacity: usize) -> Recorder {
    let ring = Arc::new(Mutex::new(Ring {
        name: name.to_string(),
        lines: VecDeque::with_capacity(capacity.max(1)),
        capacity: capacity.max(1),
        recorded: 0,
        dropped: 0,
    }));
    {
        let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
        reg.retain(|w| w.strong_count() > 0);
        reg.push(Arc::downgrade(&ring));
    }
    CURRENT.with(|c| *c.borrow_mut() = Some(Arc::clone(&ring)));
    Recorder {
        ring,
        _not_send: PhantomData,
    }
}

impl Drop for Recorder {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            let mut current = c.borrow_mut();
            if current.as_ref().is_some_and(|r| Arc::ptr_eq(r, &self.ring)) {
                *current = None;
            }
        });
        registry()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retain(|w| w.upgrade().is_some_and(|r| !Arc::ptr_eq(&r, &self.ring)));
    }
}

/// Whether the current thread has a registered flight recorder. Cheap
/// (one thread-local read) — spans/events check this before paying the
/// render-and-copy cost.
pub(crate) fn active() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Push one already-rendered line into the current thread's ring, if the
/// thread is registered. No-op otherwise.
pub(crate) fn record(line: &str) {
    CURRENT.with(|c| {
        if let Some(ring) = c.borrow().as_ref() {
            lock_ring(ring).push(Entry::Rendered(line.to_string()));
        }
    });
}

/// Push one completed span into the current thread's ring; no-op when
/// the thread is unregistered (one thread-local read). The record is
/// cloned, not rendered — rendering waits for [`snapshot`], keeping the
/// span-close hot path cheap.
pub(crate) fn record_span(record: &SpanRecord) {
    CURRENT.with(|c| {
        if let Some(ring) = c.borrow().as_ref() {
            lock_ring(ring).push_span(record);
        }
    });
}

/// One worker ring's contents at snapshot time.
#[derive(Debug, Clone)]
pub struct FlightSnapshot {
    /// The name the worker registered under (e.g. `shard-2`).
    pub name: String,
    /// Lines pushed over the ring's lifetime.
    pub recorded: u64,
    /// Lines evicted because the ring was full.
    pub dropped: u64,
    /// The retained lines, oldest first.
    pub lines: Vec<String>,
}

/// Capture every live worker ring — the blackbox dump's raw material.
/// Rings are locked one at a time, briefly; workers keep recording.
pub fn snapshot() -> Vec<FlightSnapshot> {
    let rings: Vec<Arc<Mutex<Ring>>> = {
        let reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
        reg.iter().filter_map(Weak::upgrade).collect()
    };
    rings
        .iter()
        .map(|ring| {
            let ring = lock_ring(ring);
            FlightSnapshot {
                name: ring.name.clone(),
                recorded: ring.recorded,
                dropped: ring.dropped,
                lines: ring.lines.iter().map(Entry::render).collect(),
            }
        })
        .collect()
}

/// Per-ring occupancy stats without copying the lines: `(name, buffered,
/// recorded, dropped)` for every live ring. Serves the `debug` verb.
pub fn stats() -> Vec<(String, usize, u64, u64)> {
    let rings: Vec<Arc<Mutex<Ring>>> = {
        let reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
        reg.iter().filter_map(Weak::upgrade).collect()
    };
    rings
        .iter()
        .map(|ring| {
            let ring = lock_ring(ring);
            (
                ring.name.clone(),
                ring.lines.len(),
                ring.recorded,
                ring.dropped,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded() {
        let rec = register("bounded-test", 4);
        for i in 0..1000 {
            record(&format!("line-{i}"));
        }
        let snap = snapshot()
            .into_iter()
            .find(|s| s.name == "bounded-test")
            .expect("registered ring visible");
        assert_eq!(snap.lines.len(), 4, "ring stays at capacity");
        assert_eq!(snap.recorded, 1000);
        assert_eq!(snap.dropped, 996);
        assert_eq!(
            snap.lines,
            vec!["line-996", "line-997", "line-998", "line-999"]
        );
        drop(rec);
    }

    #[test]
    fn deregistration_removes_the_ring() {
        {
            let _rec = register("ephemeral-test", 8);
            record("hello");
            assert!(active());
            assert!(snapshot().iter().any(|s| s.name == "ephemeral-test"));
        }
        assert!(!active());
        assert!(!snapshot().iter().any(|s| s.name == "ephemeral-test"));
        // records after deregistration are dropped silently
        record("nobody listening");
    }

    #[test]
    fn unregistered_threads_record_nothing() {
        let handle = std::thread::spawn(|| {
            assert!(!active());
            record("dropped");
        });
        handle.join().expect("thread ok");
    }

    #[test]
    fn snapshot_sees_other_threads_rings() {
        let (tx, rx) = std::sync::mpsc::channel();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let handle = std::thread::spawn(move || {
            let _rec = register("cross-thread-test", 16);
            record("from the worker");
            tx.send(()).expect("main alive");
            done_rx.recv().expect("main signals done");
        });
        rx.recv().expect("worker registered");
        let snap = snapshot()
            .into_iter()
            .find(|s| s.name == "cross-thread-test")
            .expect("worker ring visible from another thread");
        assert_eq!(snap.lines, vec!["from the worker"]);
        done_tx.send(()).expect("worker alive");
        handle.join().expect("worker ok");
    }

    #[test]
    fn stats_match_snapshot() {
        let _rec = register("stats-test", 2);
        record("a");
        record("b");
        record("c");
        let stats = stats()
            .into_iter()
            .find(|(name, ..)| name == "stats-test")
            .expect("ring listed");
        assert_eq!(stats.1, 2, "buffered");
        assert_eq!(stats.2, 3, "recorded");
        assert_eq!(stats.3, 1, "dropped");
    }
}
