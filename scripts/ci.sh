#!/usr/bin/env bash
# Tier-1 gate for rapminer-rs. Every PR must pass this script unchanged.
#
# Runs, in order:
#   1. cargo fmt --check        -- formatting is canonical rustfmt
#   2. cargo clippy -D warnings -- lint-clean across the whole workspace
#   3. cargo build --release    -- the release artifacts must build
#   4. cargo test -q            -- full test suite (unit + property + e2e)
#   5. clippy unwrap gate       -- service/pipeline non-test code must not
#                                  unwrap (fault-tolerance policy: recover
#                                  or degrade, never panic the daemon)
#   6. fault injection          -- the failpoint suite: rapd must survive
#                                  injected panics, spool I/O errors, slow
#                                  localizations, and worker deaths
#   7. dirty stream             -- the admission-control suite: ≥5%
#                                  corrupted frames (NaN, duplicates,
#                                  reorder, replay, schema drift) must
#                                  quarantine/repair cleanly with
#                                  byte-identical clean-subset output
#   8. cargo bench --no-run     -- Criterion benches must compile
#   9. obs_overhead             -- tracing overhead smoke test: spans
#                                  enabled vs disabled must stay within a
#                                  5% budget on the localizers bench
#                                  fixture
#
# The workspace is fully offline (external deps resolve to crates/shims/),
# so --offline is passed everywhere; no network access is required.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo build --workspace --release --offline
run cargo test --workspace -q --offline
run cargo clippy -p service -p pipeline --offline -- -D warnings -D clippy::unwrap_used
run cargo test -p service --features fail --offline -q --test fault_injection
run cargo test -p rapminer-suite --offline -q --test dirty_stream
run cargo bench --workspace --offline --no-run
run cargo run --release --offline -p rapminer-bench --bin obs_overhead -- 5.0

echo "==> tier-1 gate passed"
