#!/usr/bin/env bash
# Tier-1 gate for rapminer-rs. Every PR must pass this script unchanged.
#
# Runs, in order:
#   1. cargo fmt --check        -- formatting is canonical rustfmt
#   2. cargo clippy -D warnings -- lint-clean across the whole workspace
#   3. cargo build --release    -- the release artifacts must build
#   4. cargo test -q            -- full test suite (unit + property + e2e)
#   5. clippy unwrap gate       -- service/pipeline non-test code must not
#                                  unwrap (fault-tolerance policy: recover
#                                  or degrade, never panic the daemon)
#   6. fault injection          -- the failpoint suite: rapd must survive
#                                  injected panics, spool I/O errors, slow
#                                  localizations, and worker deaths
#   7. dirty stream             -- the admission-control suite: ≥5%
#                                  corrupted frames (NaN, duplicates,
#                                  reorder, replay, schema drift) must
#                                  quarantine/repair cleanly with
#                                  byte-identical clean-subset output
#   8. cargo bench --no-run     -- Criterion benches must compile
#   9. obs_overhead             -- tracing overhead smoke test: spans
#                                  enabled vs disabled must stay within a
#                                  5% budget on the localizers bench
#                                  fixture
#  10. determinism gate         -- `rapminer localize` on a fixed fixture
#                                  must print byte-identical output at
#                                  --threads 1 and --threads 8 (the
#                                  parallel-search contract)
#  11. bench regression         -- bench_localize re-checks determinism on
#                                  the Fig. 10 fixture, writes
#                                  BENCH_localize.json, and fails if the
#                                  serial path regressed >20% against
#                                  results/BENCH_localize.baseline.json
#                                  (calibration-normalized), or if a >=4
#                                  core host falls below the 2.5x speedup
#                                  floor
#  12. detection gate           -- `rapminer detect` replays a seeded
#                                  unlabelled anomaly stream through the
#                                  streaming detector end to end and must
#                                  reach >=0.9 recall with <=1 false
#                                  trigger; two runs must be
#                                  byte-identical (determinism)
#  13. introspection gate      -- boots rapd over TCP, follows one frame
#                                  correlation token across the trace,
#                                  incident, and quarantine sinks,
#                                  schema-checks the `debug` verb's JSON,
#                                  and runs the Prometheus exposition
#                                  lint against a live /metrics scrape
#  14. crash-recovery gate     -- SIGKILLs rapd mid-stream at seeded
#                                  points, restarts on the same spool, and
#                                  asserts zero admitted-frame loss,
#                                  exactly-once incidents, checkpoint
#                                  restore without detector re-warm, and
#                                  byte-identical localizations vs an
#                                  uninterrupted run; also boots from the
#                                  committed golden checkpoint fixture to
#                                  pin format forward compatibility
#
# The workspace is fully offline (external deps resolve to crates/shims/),
# so --offline is passed everywhere; no network access is required.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo build --workspace --release --offline
run cargo test --workspace -q --offline
run cargo clippy -p service -p pipeline --offline -- -D warnings -D clippy::unwrap_used
run cargo test -p service --features fail --offline -q --test fault_injection
run cargo test -p rapminer-suite --offline -q --test dirty_stream
run cargo bench --workspace --offline --no-run
run cargo run --release --offline -p rapminer-bench --bin obs_overhead -- 5.0

# 10. determinism gate: the CLI must emit byte-identical localizations for
# any thread count. Generates a seeded fixture, then diffs serial vs
# 8-thread output (ranked patterns, scores, and search counters).
echo "==> determinism gate (localize --threads 1 vs --threads 8)"
DET_DIR="$(mktemp -d)"
trap 'rm -rf "$DET_DIR"' EXIT
run cargo run --release --offline -p rapminer-cli --bin rapminer -- \
    generate --dataset squeeze --out "$DET_DIR/data" --cases-per-group 1 --seed 20220607
for case_csv in "$DET_DIR"/data/squeeze_*.csv; do
    cargo run --release --offline -q -p rapminer-cli --bin rapminer -- \
        localize --input "$case_csv" --k 5 --stats true --threads 1 \
        >> "$DET_DIR/serial.txt"
    cargo run --release --offline -q -p rapminer-cli --bin rapminer -- \
        localize --input "$case_csv" --k 5 --stats true --threads 8 \
        >> "$DET_DIR/parallel.txt"
done
run diff -u "$DET_DIR/serial.txt" "$DET_DIR/parallel.txt"
echo "    localize output byte-identical across thread counts"

# 11. bench regression: machine-readable record + serial-path budget
run cargo run --release --offline -p rapminer-bench --bin bench_localize

# 12. detection gate: seeded end-to-end detect-then-localize replay.
# The gate flags make the run fail on recall < 0.9 or > 1 false trigger;
# the diff proves the detector is deterministic across runs.
echo "==> detection gate (detect --min-recall 0.9 --max-false-triggers 1, twice + diff)"
cargo run --release --offline -q -p rapminer-cli --bin rapminer -- \
    detect --seed 7 --min-recall 0.9 --max-false-triggers 1 \
    > "$DET_DIR/detect1.txt"
cargo run --release --offline -q -p rapminer-cli --bin rapminer -- \
    detect --seed 7 --min-recall 0.9 --max-false-triggers 1 \
    > "$DET_DIR/detect2.txt"
run diff -u "$DET_DIR/detect1.txt" "$DET_DIR/detect2.txt"
echo "    detection replay deterministic, recall/false-trigger gate passed"

# 13. introspection gate: one frame token must reconstruct the whole
# lifecycle, the debug verb must return schema-valid internals, and the
# live /metrics scrape must pass the exposition-format lint.
run cargo test -p service --offline -q --test introspection

# 14. crash-recovery gate: kill -9 torture plus the golden-checkpoint
# forward-compat boot (tests/fixtures/checkpoint_v1.jsonl was written by a
# previous binary's graceful drain and must still restore).
run cargo test -p rapminer-suite --offline -q --test crash_recovery

echo "==> tier-1 gate passed"
