#!/usr/bin/env bash
# Tier-1 gate for rapminer-rs. Every PR must pass this script unchanged.
#
# Runs, in order:
#   1. cargo fmt --check        -- formatting is canonical rustfmt
#   2. cargo clippy -D warnings -- lint-clean across the whole workspace
#   3. cargo build --release    -- the release artifacts must build
#   4. cargo test -q            -- full test suite (unit + property + e2e)
#
# The workspace is fully offline (external deps resolve to crates/shims/),
# so --offline is passed everywhere; no network access is required.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo build --workspace --release --offline
run cargo test --workspace -q --offline

echo "==> tier-1 gate passed"
