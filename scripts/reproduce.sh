#!/usr/bin/env bash
# Regenerate every table and figure of the paper into results/.
# Usage: scripts/reproduce.sh [cases_per_group] [failures]
set -euo pipefail
cd "$(dirname "$0")/.."
CASES="${1:-10}"
FAILURES="${2:-105}"
mkdir -p results
run() { echo ">> $1"; shift; cargo run --release -p rapminer-bench --bin "$@" ; }
run "Table I"            table1                      > results/table1.txt
run "Table IV"           table4                      > results/table4.txt
run "Fig 8(a)"           fig8a  "$CASES"             > results/fig8a.txt
run "Fig 9(a)"           fig9a  "$CASES"             > results/fig9a.txt
run "Fig 8(b)"           fig8b  "$FAILURES"          > results/fig8b.txt
run "Fig 9(b)"           fig9b  "$FAILURES"          > results/fig9b.txt
run "Fig 10(a)"          fig10a "$FAILURES"          > results/fig10a.txt
run "Fig 10(b)"          fig10b "$FAILURES"          > results/fig10b.txt
run "Table VI"           table6 "$FAILURES"          > results/table6.txt
run "breakdown (ext.)"   breakdown "$FAILURES"       > results/breakdown.txt
run "noise abl. (ext.)"  noise_ablation "$CASES"     > results/noise_ablation.txt
echo "all artifacts written to results/"
