//! Paper-scale smoke tests: the full 33×4×4×20 CDN topology (10 560
//! leaves) through the complete pipeline — these guard against
//! accidentally superlinear hot paths.

use std::time::Instant;

use rapminer_suite::prelude::*;

fn paper_scale_case() -> LocalizationCase {
    let ds = RapmdGenerator::new(RapmdConfig {
        num_failures: 1,
        ..RapmdConfig::default() // paper topology
    })
    .generate(321);
    ds.cases.into_iter().next().expect("one case")
}

#[test]
fn paper_topology_localizes_quickly() {
    let case = paper_scale_case();
    assert!(
        case.frame.num_rows() > 5000,
        "paper topology is sparse-large"
    );
    let start = Instant::now();
    let raps = RapMiner::new()
        .localize(&case.frame, 5)
        .expect("labelled frame");
    let elapsed = start.elapsed();
    assert!(
        elapsed.as_secs_f64() < 2.0,
        "rapminer took {elapsed:?} on one paper-scale case"
    );
    assert!(!raps.is_empty());
}

#[test]
fn every_method_completes_at_paper_scale() {
    let case = paper_scale_case();
    for method in all_localizers() {
        let start = Instant::now();
        let out = method.localize(&case.frame, 5).expect("localize");
        let elapsed = start.elapsed();
        assert!(
            elapsed.as_secs_f64() < 30.0,
            "{} took {elapsed:?} at paper scale",
            method.name()
        );
        // every method must at least produce finite scores
        assert!(out.iter().all(|s| s.score.is_finite()));
    }
}

#[test]
fn index_scales_to_paper_topology() {
    let case = paper_scale_case();
    let start = Instant::now();
    let index = LeafIndex::new(&case.frame);
    let build = start.elapsed();
    assert!(build.as_secs_f64() < 0.5, "index build took {build:?}");

    // ten thousand support queries stay well under a second
    let combo = case.truth[0].clone();
    let start = Instant::now();
    let mut acc = 0usize;
    for _ in 0..10_000 {
        acc += index.support_count(&combo);
    }
    let queries = start.elapsed();
    assert!(acc > 0);
    assert!(
        queries.as_secs_f64() < 1.0,
        "10k support queries took {queries:?}"
    );
}

#[test]
fn analyze_matches_localize_at_scale() {
    let case = paper_scale_case();
    let miner = RapMiner::new();
    let outcome = miner.analyze(&case.frame).expect("labelled");
    let (_, stats) = miner.localize_with_stats(&case.frame, 5).expect("labelled");
    assert_eq!(outcome.deleted.len(), stats.attrs_deleted);
    // every kept attribute clears the threshold; every deleted one doesn't
    let t_cp = miner.config().t_cp();
    assert!(outcome
        .kept
        .iter()
        .all(|(_, cp)| *cp > t_cp || outcome.deleted.is_empty()));
    assert!(outcome.deleted.iter().all(|(_, cp)| *cp <= t_cp));
}
