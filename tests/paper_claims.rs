//! Small-scale assertions of the paper's *qualitative* claims — the shapes
//! the full benchmark binaries reproduce at scale (see `EXPERIMENTS.md`).

use rapminer_suite::prelude::*;

fn squeeze_small() -> Dataset {
    SqueezeGenerator::new(SqueezeGenConfig {
        attribute_sizes: vec![8, 6, 5, 4],
        cases_per_group: 2,
        ..SqueezeGenConfig::default()
    })
    .generate(4242)
}

fn rapmd_small() -> Dataset {
    RapmdGenerator::new(RapmdConfig {
        num_failures: 15,
        paper_topology: false,
        ..RapmdConfig::default()
    })
    .generate(4242)
}

/// Fig. 8(a): RAPMiner is near-perfect on every Squeeze-B0 group.
#[test]
fn rapminer_is_strong_on_all_squeeze_groups() {
    let ds = squeeze_small();
    let method = RapMinerLocalizer::default();
    for group in ds.group_names() {
        let cases: Vec<_> = ds.group(&group).cloned().collect();
        let outcome = evaluate_f1(&method, &cases);
        assert!(
            outcome.f1 > 0.9,
            "group {group}: rapminer F1 {} below 0.9",
            outcome.f1
        );
    }
}

/// Fig. 8(a): Adtributor performs well only on 1-dimensional groups.
#[test]
fn adtributor_collapses_beyond_one_dimension() {
    let ds = squeeze_small();
    let method = Adtributor::default();
    let one_d: Vec<_> = ["(1,1)", "(1,2)", "(1,3)"]
        .iter()
        .flat_map(|g| ds.group(g).cloned())
        .collect();
    let multi_d: Vec<_> = ["(2,1)", "(2,2)", "(2,3)", "(3,1)", "(3,2)", "(3,3)"]
        .iter()
        .flat_map(|g| ds.group(g).cloned())
        .collect();
    let f1_one = evaluate_f1(&method, &one_d).f1;
    let f1_multi = evaluate_f1(&method, &multi_d).f1;
    assert!(f1_one > 0.6, "adtributor should handle 1-D, got {f1_one}");
    assert!(
        f1_multi < 0.1,
        "adtributor cannot express multi-D causes, got {f1_multi}"
    );
}

/// Fig. 8(b): on RAPMD (assumptions violated), RAPMiner beats the
/// assumption-dependent methods and stays competitive with the best
/// baseline.
#[test]
fn rapminer_leads_on_rapmd() {
    let ds = rapmd_small();
    let mut scores = std::collections::HashMap::new();
    for method in all_localizers() {
        let rc = evaluate_rc(method.as_ref(), &ds.cases, &[3]).rc[0].1;
        scores.insert(method.name().to_string(), rc);
    }
    let rapminer = scores["rapminer"];
    assert!(
        rapminer >= scores["squeeze"],
        "rapminer {rapminer} < squeeze {}",
        scores["squeeze"]
    );
    assert!(
        rapminer >= scores["adtributor"],
        "rapminer {rapminer} < adtributor {}",
        scores["adtributor"]
    );
    assert!(
        rapminer >= scores["idice"],
        "rapminer {rapminer} < idice {}",
        scores["idice"]
    );
    assert!(
        rapminer + 0.1 >= scores["fp-growth"],
        "rapminer {rapminer} not competitive with fp-growth {}",
        scores["fp-growth"]
    );
}

/// Fig. 8(b): Squeeze degrades on RAPMD relative to its home turf.
#[test]
fn squeeze_degrades_when_assumptions_break() {
    let squeeze_ds = squeeze_small();
    let rapmd_ds = rapmd_small();
    let method = Squeeze::default();
    let home = evaluate_f1(&method, &squeeze_ds.cases).recall;
    let away = evaluate_rc(&method, &rapmd_ds.cases, &[5]).rc[0].1;
    assert!(
        home > away + 0.2,
        "squeeze home recall {home} should clearly beat away RC@5 {away}"
    );
}

/// Table IV / Proof 1: deleting k attributes prunes more than the bound.
#[test]
fn table4_decrease_ratio_holds() {
    use rapminer_suite::mdkpi::decrease_ratio;
    let bounds = [0.5, 0.75, 0.875, 0.9375, 0.96875];
    for (k, bound) in (1u32..=5).zip(bounds) {
        assert!(decrease_ratio(6, k) > bound);
    }
}

/// §V-H / Table VI direction: deletion reduces the search volume on RAPMD
/// (measured via visited combinations, which is host-independent).
#[test]
fn deletion_shrinks_search_volume() {
    let ds = rapmd_small();
    let with = RapMiner::with_config(Config::new().with_early_stop(false));
    let without = RapMiner::with_config(
        Config::new()
            .with_redundant_deletion(false)
            .with_early_stop(false),
    );
    let mut visited_with = 0usize;
    let mut visited_without = 0usize;
    let mut deleted_any = false;
    for case in &ds.cases {
        let (_, s1) = with.localize_with_stats(&case.frame, 3).expect("with");
        let (_, s2) = without
            .localize_with_stats(&case.frame, 3)
            .expect("without");
        visited_with += s1.combos_visited;
        visited_without += s2.combos_visited;
        deleted_any |= s1.attrs_deleted > 0;
    }
    assert!(deleted_any, "no case deleted any attribute");
    assert!(
        visited_with < visited_without,
        "deletion did not shrink the search: {visited_with} vs {visited_without}"
    );
}

/// Fig. 10: sensitivity directions — RC@3 is non-increasing in t_CP and
/// non-decreasing in t_conf on clean RAPMD (checked loosely: endpoints).
#[test]
fn sensitivity_directions_match_fig10() {
    let ds = rapmd_small();
    let rc_for = |config: Config| {
        let m = RapMinerLocalizer::with_config(config);
        evaluate_rc(&m, &ds.cases, &[3]).rc[0].1
    };
    let loose_cp = rc_for(Config::new().with_t_cp(0.0005).unwrap());
    let tight_cp = rc_for(Config::new().with_t_cp(0.1).unwrap());
    assert!(
        loose_cp >= tight_cp,
        "RC@3 should not improve as t_CP grows: {loose_cp} vs {tight_cp}"
    );
    let low_conf = rc_for(Config::new().with_t_conf(0.55).unwrap());
    let high_conf = rc_for(Config::new().with_t_conf(0.95).unwrap());
    assert!(
        high_conf + 1e-9 >= low_conf,
        "RC@3 should not degrade as t_conf grows: {low_conf} vs {high_conf}"
    );
}

/// Determinism across the whole benchmark path: generating and evaluating
/// twice yields bit-identical effectiveness numbers.
#[test]
fn full_benchmark_path_is_deterministic() {
    let a = evaluate_rc(&RapMinerLocalizer::default(), &rapmd_small().cases, &[3]).rc[0].1;
    let b = evaluate_rc(&RapMinerLocalizer::default(), &rapmd_small().cases, &[3]).rc[0].1;
    assert_eq!(a, b);
}
