//! End-to-end tests of the compiled `rapminer` binary (process boundary:
//! exit codes, stdout, stderr).

use std::path::PathBuf;
use std::process::Command;

/// Locate the compiled binary next to the test executable.
fn binary() -> PathBuf {
    let mut path = std::env::current_exe().expect("test exe path");
    path.pop(); // deps/
    path.pop(); // debug/ (or release/)
    path.push("rapminer");
    path
}

/// The binary exists when the whole workspace was built/tested (its
/// package's own tests force it); a lone `cargo test -p rapminer-suite`
/// may predate it — skip gracefully in that case.
macro_rules! require_binary {
    () => {
        if !binary().exists() {
            eprintln!("skipping: rapminer binary not built (run `cargo test --workspace`)");
            return;
        }
    };
}

fn run(args: &[&str]) -> (String, String, bool) {
    let output = Command::new(binary())
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
        output.status.success(),
    )
}

#[test]
fn help_exits_zero_with_usage() {
    require_binary!();
    let (stdout, _, ok) = run(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    // no arguments behaves like help
    let (stdout, _, ok) = run(&[]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn unknown_command_exits_nonzero_with_message() {
    require_binary!();
    let (_, stderr, ok) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn missing_file_exits_nonzero() {
    require_binary!();
    let (_, stderr, ok) = run(&["localize", "--input", "/definitely/missing.csv"]);
    assert!(!ok);
    assert!(stderr.contains("cannot open"));
}

#[test]
fn full_generate_localize_evaluate_flow() {
    require_binary!();
    let dir = std::env::temp_dir().join(format!("rapminer_bin_{}", std::process::id()));
    let dir_s = dir.to_str().unwrap();
    let (stdout, stderr, ok) = run(&[
        "generate",
        "--dataset",
        "squeeze",
        "--out",
        dir_s,
        "--cases-per-group",
        "1",
        "--seed",
        "11",
    ]);
    assert!(ok, "generate failed: {stderr}");
    assert!(stdout.contains("9 cases"));

    let case = dir.join("squeeze_d2_r1_000.csv");
    let (stdout, stderr, ok) = run(&["localize", "--input", case.to_str().unwrap()]);
    assert!(ok, "localize failed: {stderr}");
    assert!(stdout.contains("root anomaly pattern"), "got: {stdout}");

    let (stdout, stderr, ok) = run(&[
        "evaluate",
        "--dir",
        dir_s,
        "--protocol",
        "rc",
        "--k",
        "1,3",
        "--method",
        "rapminer",
    ]);
    assert!(ok, "evaluate failed: {stderr}");
    assert!(stdout.contains("RC@1"), "got: {stdout}");
    assert!(stdout.contains("rapminer"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn methods_lists_all_six() {
    require_binary!();
    let (stdout, _, ok) = run(&["methods"]);
    assert!(ok);
    for name in [
        "rapminer",
        "squeeze",
        "fp-growth",
        "adtributor",
        "idice",
        "hotspot",
    ] {
        assert!(stdout.contains(name), "missing {name} in: {stdout}");
    }
}
