//! Cross-crate integration: the full pipeline from CSV bytes through
//! detection, localization and evaluation.

use rapminer_suite::prelude::*;

/// A CSV with a clean (L1, *) failure, in the on-disk layout.
const INCIDENT_CSV: &str = "\
location,website,real,predict
L1,Site1,10.0,100.0
L1,Site2,20.0,90.0
L2,Site1,101.0,100.0
L2,Site2,89.0,90.0
L3,Site1,99.0,100.0
L3,Site2,91.0,90.0
";

#[test]
fn csv_to_localization_end_to_end() {
    let mut frame = read_frame_csv(INCIDENT_CSV.as_bytes()).expect("parse csv");
    assert_eq!(frame.num_rows(), 6);
    let detector = DeviationThreshold::new(0.3);
    frame.label_with(|v, f| detector.is_anomalous(v, f));
    assert_eq!(frame.num_anomalous(), 2);

    let raps = RapMiner::new().localize(&frame, 3).expect("localize");
    assert_eq!(raps[0].combination.to_string(), "(L1, *)");
    assert_eq!(raps.len(), 1, "descendants must be pruned");
}

#[test]
fn every_localizer_solves_its_favourable_case() {
    // a uniform-magnitude, single-cuboid, 1-D failure satisfies every
    // method's assumptions simultaneously
    let mut frame = read_frame_csv(INCIDENT_CSV.as_bytes()).expect("parse csv");
    let detector = DeviationThreshold::new(0.3);
    frame.label_with(|v, f| detector.is_anomalous(v, f));
    for method in all_localizers() {
        let out = method.localize(&frame, 1).expect("localize");
        assert_eq!(
            out.first().map(|s| s.combination.to_string()),
            Some("(L1, *)".to_string()),
            "method {} missed the trivial case",
            method.name()
        );
    }
}

#[test]
fn frame_roundtrips_through_disk_before_localizing() {
    let mut frame = read_frame_csv(INCIDENT_CSV.as_bytes()).expect("parse");
    let detector = DeviationThreshold::new(0.3);
    frame.label_with(|v, f| detector.is_anomalous(v, f));

    let mut buf = Vec::new();
    write_frame_csv(&frame, &mut buf).expect("write");
    let reloaded = read_frame_csv(buf.as_slice()).expect("reread");
    assert_eq!(reloaded.labels(), frame.labels());

    let a = RapMiner::new().localize(&frame, 3).expect("original");
    let b = RapMiner::new().localize(&reloaded, 3).expect("reloaded");
    assert_eq!(
        a.iter()
            .map(|r| r.combination.to_string())
            .collect::<Vec<_>>(),
        b.iter()
            .map(|r| r.combination.to_string())
            .collect::<Vec<_>>()
    );
}

#[test]
fn simulator_injection_detection_localization_chain() {
    let topology = CdnTopology::small(123);
    let schema = topology.schema().clone();
    let model = TrafficModel::new(topology, TrafficConfig::default(), 123);
    let mut frame = model.snapshot(1000);
    let truth = schema
        .parse_combination("website=Site3")
        .expect("valid combination");
    FailureInjector::new(0.5, 0.9).inject(&mut frame, std::slice::from_ref(&truth), 1);

    let detector = DeviationThreshold::new(0.3);
    frame.label_with(|v, f| detector.is_anomalous(v, f));
    let raps = RapMiner::new().localize(&frame, 3).expect("localize");
    assert_eq!(raps[0].combination, truth);
}

#[test]
fn dataset_directory_roundtrip_preserves_evaluation() {
    let ds = SqueezeGenerator::new(SqueezeGenConfig {
        attribute_sizes: vec![4, 4, 4],
        cases_per_group: 1,
        ..SqueezeGenConfig::default()
    })
    .generate(77);
    let dir = std::env::temp_dir().join(format!("rapminer_it_{}", std::process::id()));
    save_dataset(&ds, &dir).expect("save");
    let loaded = load_dataset(&dir).expect("load");

    let method = RapMinerLocalizer::default();
    let before = evaluate_f1(&method, &ds.cases);
    let after = evaluate_f1(&method, &loaded.cases);
    assert!(
        (before.f1 - after.f1).abs() < 1e-12,
        "evaluation changed across disk roundtrip: {} vs {}",
        before.f1,
        after.f1
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn adapter_and_core_rapminer_agree() {
    let ds = SqueezeGenerator::new(SqueezeGenConfig {
        attribute_sizes: vec![4, 4, 4],
        cases_per_group: 1,
        ..SqueezeGenConfig::default()
    })
    .generate(55);
    let core = RapMiner::new();
    let adapter = RapMinerLocalizer::default();
    for case in &ds.cases {
        let a = core.localize(&case.frame, 3).expect("core");
        let b = adapter.localize(&case.frame, 3).expect("adapter");
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.combination, y.combination);
            assert!((x.score - y.score).abs() < 1e-12);
        }
    }
}

#[test]
fn labels_are_the_only_thing_rapminer_reads() {
    // scaling all v/f by 1000 must not change the result as long as the
    // labels stay identical (§IV-B: fundamental vs derived is irrelevant)
    let mut frame = read_frame_csv(INCIDENT_CSV.as_bytes()).expect("parse");
    let detector = DeviationThreshold::new(0.3);
    frame.label_with(|v, f| detector.is_anomalous(v, f));
    let labels = frame.labels().unwrap().to_vec();

    let mut scaled_builder = LeafFrame::builder(frame.schema());
    for i in 0..frame.num_rows() {
        scaled_builder.push(
            frame.row_elements(i),
            frame.v(i) * 1000.0,
            frame.f(i) * 1000.0,
        );
    }
    let mut scaled = scaled_builder.build();
    scaled.set_labels(labels).expect("same length");

    let a = RapMiner::new().localize(&frame, 3).expect("original");
    let b = RapMiner::new().localize(&scaled, 3).expect("scaled");
    assert_eq!(
        a.iter()
            .map(|r| r.combination.to_string())
            .collect::<Vec<_>>(),
        b.iter()
            .map(|r| r.combination.to_string())
            .collect::<Vec<_>>()
    );
}
