//! End-to-end dirty-telemetry test: stream a cdnsim-generated CDN outage at
//! rapd with ≥5% of frames corrupted (NaN values, duplicate leaves,
//! out-of-order delivery, replays, schema drift) and prove that
//!
//! * nothing panics and every frame is accounted for:
//!   `processed + dropped + shed + quarantined == ingested`,
//! * RAP localization output on the clean-frame subset is byte-identical
//!   to an uncorrupted run (repairs restore original payloads exactly),
//! * negative values and drift beyond the allowance take their own paths
//!   (clamp repair, quarantine) without breaking the invariant.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

use cdnsim::{
    named_rows, CdnTopology, Corruption, CorruptionConfig, Corruptor, FailureInjector,
    TrafficConfig, TrafficModel,
};
use mdkpi::{LeafFrame, Schema};
use service::json::{parse, Json};
use service::ServiceConfig;

/// One NDJSON client connection with line-by-line request/reply helpers.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to rapd");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            writer: stream,
            reader,
        }
    }

    fn send_line(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("write request");
    }

    fn read_reply(&mut self) -> Json {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read reply");
        parse(line.trim()).unwrap_or_else(|e| panic!("bad reply {line:?}: {e}"))
    }

    fn request(&mut self, line: &str) -> Json {
        self.send_line(line);
        self.read_reply()
    }
}

fn schema_line(tenant: &str, schema: &Schema) -> String {
    let attributes = Json::Arr(
        schema
            .attr_ids()
            .map(|a| {
                let attr = schema.attribute(a);
                Json::Arr(vec![
                    Json::str(attr.name()),
                    Json::Arr(
                        attr.element_ids()
                            .map(|e| Json::str(attr.element_name(e)))
                            .collect(),
                    ),
                ])
            })
            .collect(),
    );
    Json::Obj(vec![
        ("type".to_string(), Json::str("schema")),
        ("tenant".to_string(), Json::str(tenant)),
        ("attributes".to_string(), attributes),
    ])
    .render()
}

/// Wire-shaped rows: `(attribute values in schema order, value)`.
type WireRows = Vec<(Vec<String>, f64)>;
/// One delivered frame: timestamp plus rows.
type Delivery = (u64, WireRows);

/// An `observe` line; NaN values render as JSON `null` (the wire encoding
/// rapd's parser maps back to NaN).
fn observe_line(tenant: &str, ts: u64, rows: &[(Vec<String>, f64)]) -> String {
    let rows = Json::Arr(
        rows.iter()
            .map(|(names, v)| {
                Json::Arr(vec![
                    Json::Arr(names.iter().map(Json::str).collect()),
                    Json::Num(*v),
                ])
            })
            .collect(),
    );
    Json::Obj(vec![
        ("type".to_string(), Json::str("observe")),
        ("tenant".to_string(), Json::str(tenant)),
        ("rows".to_string(), rows),
        ("ts".to_string(), Json::Num(ts as f64)),
    ])
    .render()
}

fn temp_spool(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rapd-dirty-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dirty_config(spool: PathBuf) -> ServiceConfig {
    ServiceConfig {
        listen: "127.0.0.1:0".to_string(),
        metrics_listen: "127.0.0.1:0".to_string(),
        shards: 1,
        queue_capacity: 4096, // never drop: drops would fork the two runs
        spool_dir: Some(spool),
        ring_capacity: 256,
        forecast_window: 10,
        reorder_window: 64,
        // 2.5 simulated minutes: adjacent-frame swaps are always healed
        max_lateness: std::time::Duration::from_millis(150_000),
        schema_drift_limit: 8,
        pipeline: pipeline::PipelineConfig {
            history_len: 60,
            warmup: 15,
            alarm_threshold: 0.08,
            leaf_threshold: 0.3,
            k: 3,
            ..pipeline::PipelineConfig::default()
        },
        ..ServiceConfig::default()
    }
}

/// Boot a fresh rapd, replay `deliveries`, flush, and return
/// (stats, canonical incident lines, `/metrics` text).
fn run_stream(tag: &str, schema: &Schema, deliveries: &[Delivery]) -> (Json, Vec<String>, String) {
    let spool = temp_spool(tag);
    let server = service::start(dirty_config(spool.clone()), service::default_factory())
        .expect("daemon boots");
    let mut client = Client::connect(server.ingest_addr());

    let reply = client.request(&schema_line("edge", schema));
    assert_eq!(
        reply.get("type").and_then(Json::as_str),
        Some("ok"),
        "{reply}"
    );

    // pipelined write-all / read-all: every reply must be "ok" — protocol
    // errors or daemon death would surface here
    for (ts, rows) in deliveries {
        client.send_line(&observe_line("edge", *ts, rows));
    }
    for (ts, _) in deliveries {
        let reply = client.read_reply();
        assert_eq!(
            reply.get("type").and_then(Json::as_str),
            Some("ok"),
            "frame ts={ts}: {reply}"
        );
    }

    let reply = client.request(r#"{"type":"flush"}"#);
    assert_eq!(
        reply.get("flushed").and_then(Json::as_bool),
        Some(true),
        "{reply}"
    );

    let stats = client.request(r#"{"type":"stats"}"#);
    let incidents = client.request(r#"{"type":"incidents","limit":256}"#);
    let canonical = canonical_incidents(&incidents);
    let metrics = http_get(server.metrics_addr(), "/metrics");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&spool);
    (stats, canonical, metrics)
}

/// Reduce each incident to `tenant|step|deviation|raps(pattern:score,…)` —
/// the localization-relevant payload, with full float precision so equality
/// means byte-identical output.
fn canonical_incidents(reply: &Json) -> Vec<String> {
    let list = reply
        .get("incidents")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("bad incidents reply: {reply}"));
    list.iter()
        .map(|incident| {
            let tenant = incident.get("tenant").and_then(Json::as_str).unwrap();
            let step = incident.get("step").and_then(Json::as_u64).unwrap();
            let deviation = incident
                .get("total_deviation")
                .and_then(Json::as_f64)
                .unwrap();
            let raps: Vec<String> = incident
                .get("raps")
                .and_then(Json::as_arr)
                .unwrap()
                .iter()
                .map(|rap| {
                    let pair = rap.as_arr().unwrap();
                    let pattern = pair[0].as_str().unwrap();
                    let score = pair[1].as_f64().unwrap();
                    format!("{pattern}:{score:?}")
                })
                .collect();
            format!("{tenant}|{step}|{deviation:?}|{}", raps.join(","))
        })
        .collect()
}

fn http_get(addr: SocketAddr, path: &str) -> String {
    use std::io::Read;
    let mut stream = TcpStream::connect(addr).expect("connect to metrics listener");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read http response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("http header/body split");
    assert!(head.starts_with("HTTP/1.1 200"), "bad status: {head}");
    body.to_string()
}

fn stat(stats: &Json, key: &str) -> u64 {
    stats
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats missing {key}: {stats}"))
}

/// `processed + dropped + shed + quarantined == ingested` — the admission
/// extension of the PR 3 accounting invariant.
fn assert_accounting(stats: &Json) {
    let ingested = stat(stats, "frames_ingested");
    let processed = stat(stats, "frames_processed");
    let dropped = stat(stats, "frames_dropped");
    let shed = stat(stats, "frames_shed");
    let quarantined = stat(stats, "frames_quarantined");
    assert_eq!(
        processed + dropped + shed + quarantined,
        ingested,
        "accounting must balance: {stats}"
    );
}

#[test]
fn corrupted_stream_is_quarantined_and_clean_subset_output_is_byte_identical() {
    let seed = 20220607;
    let steps = 160usize;
    let fail_at = 60usize;
    let base_minute = 2 * 24 * 60;
    let base_ts = 1_700_000_000_000u64;

    // --- the clean stream: cdnsim traffic with an L4 outage injected ---
    let topology = CdnTopology::small(seed);
    let schema = topology.schema().clone();
    let truth = schema.parse_combination("location=L4").expect("L4 exists");
    let model = TrafficModel::new(topology, TrafficConfig::default(), seed);
    let injector = FailureInjector::new(0.5, 0.9);
    let clean: Vec<(u64, LeafFrame)> = (0..steps)
        .map(|step| {
            let minute = base_minute + step;
            let mut frame = model.snapshot(minute);
            if step >= fail_at {
                injector.inject(&mut frame, std::slice::from_ref(&truth), minute as u64);
            }
            (base_ts + (step as u64) * 60_000, frame)
        })
        .collect();

    // --- corrupt it: every kind except negative (which alters payloads) ---
    let corruption = CorruptionConfig {
        nan: 0.04,
        duplicate: 0.04,
        negative: 0.0,
        drift: 0.03,
        reorder: 0.03,
        replay: 0.03,
        drift_pool: 4, // stays within the drift limit of 8
    };
    let dirty = Corruptor::new(corruption, seed).corrupt_stream(&clean);
    let corrupted = dirty.iter().filter(|f| f.kind != Corruption::Clean).count();
    assert!(
        corrupted as f64 >= 0.05 * dirty.len() as f64,
        "need ≥5% corruption, got {corrupted}/{}",
        dirty.len()
    );

    // --- run 1: the dirty delivery sequence ---
    let deliveries: Vec<Delivery> = dirty.iter().map(|f| (f.ts, f.rows.clone())).collect();
    let (stats, incidents, metrics) = run_stream("corrupted", &schema, &deliveries);

    assert_accounting(&stats);
    assert_eq!(
        stat(&stats, "frames_ingested"),
        dirty.len() as u64,
        "{stats}"
    );
    let expect_quarantined = dirty.iter().filter(|f| f.kind.quarantined()).count() as u64;
    assert_eq!(
        stat(&stats, "frames_quarantined"),
        expect_quarantined,
        "NaN frames and replay copies quarantine, everything else admits: {stats}"
    );
    assert!(
        expect_quarantined > 0,
        "the stream must exercise quarantine"
    );
    assert!(
        stat(&stats, "leaves_repaired") > 0,
        "duplicates/drift must be repaired: {stats}"
    );
    assert_eq!(stat(&stats, "frames_dropped"), 0, "{stats}");
    assert!(
        stat(&stats, "alarms") > 0,
        "the injected outage must alarm: {stats}"
    );
    assert!(
        incidents.iter().any(|line| line.contains("L4")),
        "some incident must localize to the injected L4 outage: {incidents:?}"
    );

    // zero panics: the pipeline restart counter stays at 0
    assert!(
        metrics.contains(r#"rapd_pipeline_restarts_total{reason="panic"} 0"#),
        "{metrics}"
    );
    assert!(
        metrics.contains("rapd_frames_quarantined_total{reason="),
        "{metrics}"
    );

    // --- run 2: the uncorrupted baseline — the same frames in order, minus
    // the ones the dirty run quarantined whole ---
    let quarantined_ts: std::collections::HashSet<u64> = dirty
        .iter()
        .filter(|f| f.kind != Corruption::Replay && f.kind.quarantined())
        .map(|f| f.ts)
        .collect();
    let baseline: Vec<Delivery> = clean
        .iter()
        .filter(|(ts, _)| !quarantined_ts.contains(ts))
        .map(|(ts, frame)| (*ts, named_rows(frame)))
        .collect();
    let (base_stats, base_incidents, _) = run_stream("baseline", &schema, &baseline);

    assert_accounting(&base_stats);
    assert_eq!(stat(&base_stats, "frames_quarantined"), 0, "{base_stats}");
    assert_eq!(stat(&base_stats, "leaves_repaired"), 0, "{base_stats}");

    // the tentpole claim: repairs and reordering restore the clean subset
    // exactly, so localization output is byte-identical
    assert_eq!(
        incidents, base_incidents,
        "clean-subset RAP output must match the uncorrupted run byte-for-byte"
    );
}

#[test]
fn negative_values_clamp_and_drift_beyond_the_allowance_quarantines() {
    let spool = temp_spool("edges");
    let config = ServiceConfig {
        listen: "127.0.0.1:0".to_string(),
        metrics_listen: "127.0.0.1:0".to_string(),
        shards: 1,
        spool_dir: Some(spool.clone()),
        schema_drift_limit: 1,
        // zero lateness: timestamped frames emit immediately, so replays
        // and stale timestamps are judged right away
        max_lateness: std::time::Duration::from_millis(0),
        ..ServiceConfig::default()
    };
    let server = service::start(config, service::default_factory()).expect("daemon boots");
    let mut client = Client::connect(server.ingest_addr());

    let reply = client.request(
        r#"{"type":"schema","tenant":"t","attributes":[["loc",["a","b"]],["site",["x","y"]]]}"#,
    );
    assert_eq!(reply.get("type").and_then(Json::as_str), Some("ok"));

    // negative value: admitted with a clamp repair
    let reply =
        client.request(r#"{"type":"observe","tenant":"t","rows":[[["a","x"],5],[["b","y"],-3]]}"#);
    assert_eq!(reply.get("queued").and_then(Json::as_bool), Some(true));
    assert_eq!(reply.get("repaired").and_then(Json::as_bool), Some(true));

    // first unknown value is within the allowance of 1: stripped
    let reply = client
        .request(r#"{"type":"observe","tenant":"t","rows":[[["a","x"],5],[["ghost1","x"],2]]}"#);
    assert_eq!(reply.get("queued").and_then(Json::as_bool), Some(true));
    assert_eq!(reply.get("repaired").and_then(Json::as_bool), Some(true));

    // second distinct unknown value exceeds it: quarantined
    let reply = client
        .request(r#"{"type":"observe","tenant":"t","rows":[[["a","x"],5],[["ghost2","x"],2]]}"#);
    assert_eq!(reply.get("queued").and_then(Json::as_bool), Some(false));
    assert_eq!(
        reply.get("reason").and_then(Json::as_str),
        Some("schema_drift"),
        "{reply}"
    );

    // a NaN (wire null) value quarantines the whole frame
    let reply =
        client.request(r#"{"type":"observe","tenant":"t","rows":[[["a","x"],null]],"ts":1000}"#);
    assert_eq!(reply.get("queued").and_then(Json::as_bool), Some(false));
    assert_eq!(
        reply.get("reason").and_then(Json::as_str),
        Some("non_finite"),
        "{reply}"
    );

    // replay and late frames quarantine through the reorder buffer
    for line in [
        r#"{"type":"observe","tenant":"t","rows":[[["a","x"],1]],"ts":2000}"#,
        r#"{"type":"observe","tenant":"t","rows":[[["a","x"],1]],"ts":3000}"#,
    ] {
        let reply = client.request(line);
        assert_eq!(reply.get("queued").and_then(Json::as_bool), Some(true));
    }
    let reply = client.request(r#"{"type":"flush"}"#);
    assert_eq!(reply.get("flushed").and_then(Json::as_bool), Some(true));
    // ts=3000 was already accepted (replay); ts=2500 is behind it (late)
    client.send_line(r#"{"type":"observe","tenant":"t","rows":[[["a","x"],1]],"ts":3000}"#);
    client.send_line(r#"{"type":"observe","tenant":"t","rows":[[["a","x"],1]],"ts":2500}"#);
    for _ in 0..2 {
        let reply = client.read_reply();
        assert_eq!(
            reply.get("type").and_then(Json::as_str),
            Some("ok"),
            "{reply}"
        );
    }

    let reply = client.request(r#"{"type":"flush"}"#);
    assert_eq!(reply.get("flushed").and_then(Json::as_bool), Some(true));

    // the quarantine verb surfaces the rejects, newest first
    let reply = client.request(r#"{"type":"quarantine","limit":10}"#);
    let records = reply.get("records").and_then(Json::as_arr).unwrap();
    let reasons: Vec<&str> = records
        .iter()
        .filter_map(|r| r.get("reason").and_then(Json::as_str))
        .collect();
    for expected in ["schema_drift", "non_finite", "replay", "late"] {
        assert!(
            reasons.contains(&expected),
            "missing {expected} in {reasons:?}"
        );
    }

    let stats = client.request(r#"{"type":"stats"}"#);
    assert_accounting(&stats);
    assert_eq!(stat(&stats, "frames_ingested"), 8, "{stats}");
    assert_eq!(stat(&stats, "frames_quarantined"), 4, "{stats}");
    assert!(stat(&stats, "leaves_repaired") >= 2, "{stats}");

    // per-reason counters surface in /metrics
    let metrics = http_get(server.metrics_addr(), "/metrics");
    for family in [
        r#"rapd_frames_quarantined_total{reason="non_finite"} 1"#,
        r#"rapd_frames_quarantined_total{reason="schema_drift"} 1"#,
        r#"rapd_frames_quarantined_total{reason="replay"} 1"#,
        r#"rapd_frames_quarantined_total{reason="late"} 1"#,
        r#"rapd_leaves_repaired_total{reason="negative"} 1"#,
        r#"rapd_leaves_repaired_total{reason="schema_drift"} 1"#,
    ] {
        assert!(metrics.contains(family), "missing `{family}` in {metrics}");
    }

    // the quarantine spool holds CRC-framed JSON lines for the tenant
    let spool_text = std::fs::read_to_string(spool.join("quarantine").join("t.jsonl"))
        .expect("quarantine spool exists");
    assert_eq!(spool_text.lines().count(), 4, "{spool_text}");
    for line in spool_text.lines() {
        let (json, crc) = line.rsplit_once('\t').expect("CRC-framed spool line");
        assert_eq!(crc.len(), 8, "8 hex digits of CRC32: {line}");
        let doc = parse(json).expect("spool lines are valid JSON");
        assert_eq!(doc.get("tenant").and_then(Json::as_str), Some("t"));
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&spool);
}
