//! Crash-consistency torture test of the compiled `rapminer` binary:
//! SIGKILL the rapd daemon mid-stream at seeded random points, restart it
//! on the same spool, and prove that
//!
//! * no admitted frame is lost and none is double-applied: incident
//!   output is byte-identical to an uninterrupted run of the same stream,
//! * no incident is spooled twice (frame-token dedup across WAL replays),
//! * the detector resumes from its checkpoint instead of re-warming,
//! * a graceful `shutdown` drain exits 0,
//! * a golden v1 checkpoint written by an earlier build still boots
//!   (forward compatibility is pinned, not assumed).

use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use cdnsim::{named_rows, CdnTopology, FailureInjector, TrafficConfig, TrafficModel};
use mdkpi::Schema;
use service::json::{parse, Json};

/// Locate the compiled binary next to the test executable.
fn binary() -> PathBuf {
    let mut path = std::env::current_exe().expect("test exe path");
    path.pop(); // deps/
    path.pop(); // debug/ (or release/)
    path.push("rapminer");
    path
}

/// The binary exists when the whole workspace was built/tested; a lone
/// `cargo test -p rapminer-suite` may predate it — skip gracefully.
macro_rules! require_binary {
    () => {
        if !binary().exists() {
            eprintln!("skipping: rapminer binary not built (run `cargo test --workspace`)");
            return;
        }
    };
}

/// One rapd daemon subprocess plus the ingest address it announced.
struct Daemon {
    child: Child,
    addr: String,
}

/// Spawn `rapminer serve` on `spool` and wait for its listener line.
/// The flags must stay in lockstep with [`golden_config`] — the config
/// guard refuses a checkpoint taken under different knobs.
fn spawn_daemon(spool: &Path) -> Daemon {
    let mut child = Command::new(binary())
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--metrics-listen",
            "127.0.0.1:0",
            "--shards",
            "1",
            "--queue",
            "4096",
            "--history",
            "60",
            "--warmup",
            "15",
            "--alarm-threshold",
            "0.08",
            "--leaf-threshold",
            "0.3",
            "--k",
            "3",
            "--checkpoint-interval-ms",
            "100",
            "--spool",
            spool.to_str().expect("utf8 spool path"),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("rapd spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let addr = loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read rapd stdout");
        assert!(n > 0, "rapd exited before announcing its listener");
        if let Some(rest) = line.strip_prefix("rapd listening on ") {
            break rest
                .split_whitespace()
                .next()
                .expect("listener address")
                .to_string();
        }
    };
    // drain the rest of stdout so the daemon never blocks on a full pipe
    std::thread::spawn(move || {
        let mut sink = String::new();
        loop {
            sink.clear();
            if reader.read_line(&mut sink).unwrap_or(0) == 0 {
                break;
            }
        }
    });
    Daemon { child, addr }
}

/// One NDJSON client connection with line-by-line request/reply helpers.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to rapd");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            writer: stream,
            reader,
        }
    }

    fn send_line(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("write request");
    }

    fn read_reply(&mut self) -> Json {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read reply");
        parse(line.trim()).unwrap_or_else(|e| panic!("bad reply {line:?}: {e}"))
    }

    fn request(&mut self, line: &str) -> Json {
        self.send_line(line);
        self.read_reply()
    }
}

fn ok(reply: Json) -> Json {
    assert_eq!(
        reply.get("type").and_then(Json::as_str),
        Some("ok"),
        "{reply}"
    );
    reply
}

fn schema_line(tenant: &str, schema: &Schema) -> String {
    let attributes = Json::Arr(
        schema
            .attr_ids()
            .map(|a| {
                let attr = schema.attribute(a);
                Json::Arr(vec![
                    Json::str(attr.name()),
                    Json::Arr(
                        attr.element_ids()
                            .map(|e| Json::str(attr.element_name(e)))
                            .collect(),
                    ),
                ])
            })
            .collect(),
    );
    Json::Obj(vec![
        ("type".to_string(), Json::str("schema")),
        ("tenant".to_string(), Json::str(tenant)),
        ("attributes".to_string(), attributes),
    ])
    .render()
}

/// An `observe` line with no event timestamp: frames apply in arrival
/// order on both runs, so incident output is comparable byte-for-byte.
fn observe_line(tenant: &str, rows: &[(Vec<String>, f64)]) -> String {
    let rows = Json::Arr(
        rows.iter()
            .map(|(names, v)| {
                Json::Arr(vec![
                    Json::Arr(names.iter().map(Json::str).collect()),
                    Json::Num(*v),
                ])
            })
            .collect(),
    );
    Json::Obj(vec![
        ("type".to_string(), Json::str("observe")),
        ("tenant".to_string(), Json::str(tenant)),
        ("rows".to_string(), rows),
    ])
    .render()
}

fn temp_spool(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rapd-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create spool dir");
    dir
}

/// One run's worth of wire frames: per step, the named rows of one
/// `observe`.
type WireFrames = Vec<Vec<(Vec<String>, f64)>>;

/// The deterministic test stream: cdnsim traffic with an L4 outage
/// injected from `fail_at` on.
fn outage_stream(steps: usize, fail_at: usize, seed: u64) -> (Schema, WireFrames) {
    let topology = CdnTopology::small(seed);
    let schema = topology.schema().clone();
    let truth = schema.parse_combination("location=L4").expect("L4 exists");
    let model = TrafficModel::new(topology, TrafficConfig::default(), seed);
    let injector = FailureInjector::new(0.5, 0.9);
    let frames = (0..steps)
        .map(|step| {
            let minute = 2 * 24 * 60 + step;
            let mut frame = model.snapshot(minute);
            if step >= fail_at {
                injector.inject(&mut frame, std::slice::from_ref(&truth), minute as u64);
            }
            named_rows(&frame)
        })
        .collect();
    (schema, frames)
}

/// Read the incident spool (newest segment last) into canonical incident
/// lines plus the frame tokens, for cross-run comparison and dedup
/// checks. Canonical form is `tenant|step|deviation|raps` with full float
/// precision, so equality means byte-identical localization output.
fn spool_incidents(spool: &Path) -> (Vec<String>, Vec<String>) {
    let mut canonical = Vec::new();
    let mut tokens = Vec::new();
    for name in ["incidents.jsonl.1", "incidents.jsonl"] {
        let Ok(text) = std::fs::read_to_string(spool.join(name)) else {
            continue;
        };
        for line in text.lines() {
            let (json, crc) = line.rsplit_once('\t').expect("CRC-framed spool line");
            assert_eq!(crc.len(), 8, "8 hex digits of CRC32: {line}");
            let doc = parse(json).expect("spool lines are valid JSON");
            let tenant = doc.get("tenant").and_then(Json::as_str).unwrap();
            let step = doc.get("step").and_then(Json::as_u64).unwrap();
            let deviation = doc.get("total_deviation").and_then(Json::as_f64).unwrap();
            let raps: Vec<String> = doc
                .get("raps")
                .and_then(Json::as_arr)
                .unwrap()
                .iter()
                .map(|rap| {
                    let pair = rap.as_arr().unwrap();
                    let pattern = pair[0].as_str().unwrap();
                    let score = pair[1].as_f64().unwrap();
                    format!("{pattern}:{score:?}")
                })
                .collect();
            canonical.push(format!("{tenant}|{step}|{deviation:?}|{}", raps.join(",")));
            if let Some(token) = doc.get("frame").and_then(Json::as_str) {
                tokens.push(token.to_string());
            }
        }
    }
    (canonical, tokens)
}

/// Frames currently journaled (and not yet compacted away) for the
/// `edge` tenant.
fn journal_lines(spool: &Path) -> usize {
    std::fs::read_to_string(spool.join("wal").join("edge.jsonl"))
        .map(|text| text.lines().count())
        .unwrap_or(0)
}

fn stat(stats: &Json, key: &str) -> u64 {
    stats
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats missing {key}: {stats}"))
}

/// `processed + dropped + shed + quarantined == ingested` — the
/// accounting invariant, which must hold within every process lifetime
/// (replayed frames count as ingested again).
fn assert_accounting(stats: &Json) {
    let ingested = stat(stats, "frames_ingested");
    let processed = stat(stats, "frames_processed");
    let dropped = stat(stats, "frames_dropped");
    let shed = stat(stats, "frames_shed");
    let quarantined = stat(stats, "frames_quarantined");
    assert_eq!(
        processed + dropped + shed + quarantined,
        ingested,
        "accounting must balance: {stats}"
    );
}

/// Stream the whole frame sequence uninterrupted, drain gracefully, and
/// return the spooled incidents.
fn baseline_run(schema: &Schema, frames: &[Vec<(Vec<String>, f64)>]) -> (Vec<String>, Vec<String>) {
    let spool = temp_spool("baseline");
    let mut daemon = spawn_daemon(&spool);
    let mut client = Client::connect(&daemon.addr);
    ok(client.request(&schema_line("edge", schema)));
    for rows in frames {
        client.send_line(&observe_line("edge", rows));
    }
    for _ in frames {
        ok(client.read_reply());
    }
    let reply = ok(client.request(r#"{"type":"flush"}"#));
    assert_eq!(reply.get("flushed").and_then(Json::as_bool), Some(true));
    let stats = client.request(r#"{"type":"stats"}"#);
    assert_accounting(&stats);

    // acceptance: a graceful drain checkpoints, fsyncs, and exits 0
    let reply = ok(client.request(r#"{"type":"shutdown"}"#));
    assert_eq!(
        reply.get("draining").and_then(Json::as_bool),
        Some(true),
        "{reply}"
    );
    let status = daemon.child.wait().expect("wait for rapd");
    assert!(status.success(), "graceful drain must exit 0: {status:?}");

    let incidents = spool_incidents(&spool);
    let _ = std::fs::remove_dir_all(&spool);
    incidents
}

#[test]
fn sigkill_mid_stream_loses_no_frames_and_duplicates_no_incidents() {
    require_binary!();
    let steps = 140usize;
    let fail_at = 50usize;
    let seed = 20220607u64;
    let (schema, frames) = outage_stream(steps, fail_at, seed);

    // --- the uninterrupted truth ---
    let (baseline, baseline_tokens) = baseline_run(&schema, &frames);
    assert!(
        !baseline.is_empty(),
        "the injected outage must spool incidents"
    );
    assert!(
        baseline.iter().any(|line| line.contains("L4")),
        "some incident must localize to the injected L4 outage: {baseline:?}"
    );
    assert_eq!(
        baseline_tokens.iter().collect::<HashSet<_>>().len(),
        baseline_tokens.len(),
        "the uninterrupted run must not duplicate incidents"
    );

    // --- the torture run: SIGKILL at seeded random points, restart on
    // the same spool, resume the stream where it left off ---
    let mut x = seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    // the tail of the stream is reserved for the deterministic replay
    // phase below; random kills land strictly before it
    const RESERVE: usize = 15;
    let mut kill_at: Vec<usize> = (0..3)
        .map(|_| 10 + (next() as usize) % (steps - RESERVE - 25))
        .collect();
    kill_at.sort_unstable();
    kill_at.dedup();

    let spool = temp_spool("torture");
    let mut daemon = spawn_daemon(&spool);
    let mut client = Client::connect(&daemon.addr);
    ok(client.request(&schema_line("edge", &schema)));

    let mut kills = kill_at.iter().copied().peekable();
    let mut total_replayed = 0u64;
    let mut i = 0usize;
    while i < frames.len() - RESERVE {
        // strict request/reply: an acked frame is journaled, so the
        // client never needs to resend and never double-sends
        ok(client.request(&observe_line("edge", &frames[i])));
        i += 1;
        if kills.peek() == Some(&i) {
            kills.next();
            if kills.peek().is_none() {
                // before the last random kill, let the checkpoint ticker
                // cover the state so the restart must prove it restored a
                // checkpoint instead of re-warming
                std::thread::sleep(Duration::from_millis(350));
            }
            let journal = journal_lines(&spool);
            daemon.child.kill().expect("SIGKILL rapd");
            let _ = daemon.child.wait();
            daemon = spawn_daemon(&spool);
            client = Client::connect(&daemon.addr);
            // no schema resend: the WAL journal must restore it
            let stats = client.request(r#"{"type":"stats"}"#);
            eprintln!(
                "kill after {i} frames: journal={journal} replayed={} ingested={}",
                stat(&stats, "replayed_frames"),
                stat(&stats, "frames_ingested"),
            );
            total_replayed += stat(&stats, "replayed_frames");
        }
    }

    // --- deterministic replay coverage ---
    // Random kills can race the 100ms checkpoint ticker: a kill landing
    // right after a compaction finds an empty journal suffix and replays
    // nothing. So if none of them exercised replay, force it: burst a few
    // frames into a fresh incarnation and kill it before the ticker can
    // acknowledge them. The burst takes ~1ms against a 100ms tick, so a
    // lost race is rare; retry on the reserved frames until replay is
    // observed. An incarnation killed before its first tick leaves the
    // previous checkpoint on disk, so restores stay valid and the
    // detector never re-warms.
    let mut attempts = 0;
    while total_replayed == 0 {
        attempts += 1;
        assert!(
            attempts <= 4,
            "could not catch an unacknowledged WAL suffix in {attempts} kills"
        );
        let burst = (i + 3).min(frames.len());
        while i < burst {
            ok(client.request(&observe_line("edge", &frames[i])));
            i += 1;
        }
        let journal = journal_lines(&spool);
        daemon.child.kill().expect("SIGKILL rapd");
        let _ = daemon.child.wait();
        daemon = spawn_daemon(&spool);
        client = Client::connect(&daemon.addr);
        let stats = client.request(r#"{"type":"stats"}"#);
        eprintln!(
            "forced kill after {i} frames: journal={journal} replayed={} ingested={}",
            stat(&stats, "replayed_frames"),
            stat(&stats, "frames_ingested"),
        );
        total_replayed += stat(&stats, "replayed_frames");
    }

    // stream whatever the replay phase left of the reserve
    while i < frames.len() {
        ok(client.request(&observe_line("edge", &frames[i])));
        i += 1;
    }

    let reply = ok(client.request(r#"{"type":"flush"}"#));
    assert_eq!(reply.get("flushed").and_then(Json::as_bool), Some(true));

    let stats = client.request(r#"{"type":"stats"}"#);
    assert_accounting(&stats);
    assert!(
        total_replayed > 0,
        "at least one crash must exercise WAL replay"
    );

    // the final process restored a checkpoint rather than re-warming
    let debug = client.request(r#"{"type":"debug"}"#);
    let durability = debug
        .get("durability")
        .unwrap_or_else(|| panic!("debug reply missing durability: {debug}"));
    assert!(
        durability
            .get("checkpoint_restores")
            .and_then(Json::as_u64)
            .unwrap()
            >= 1,
        "{durability}"
    );
    assert_eq!(
        durability.get("detector_rewarms").and_then(Json::as_u64),
        Some(0),
        "a restart with a valid checkpoint must not re-warm: {durability}"
    );

    let reply = ok(client.request(r#"{"type":"shutdown"}"#));
    assert_eq!(reply.get("draining").and_then(Json::as_bool), Some(true));
    let status = daemon.child.wait().expect("wait for rapd");
    assert!(status.success(), "graceful drain must exit 0: {status:?}");

    let (tortured, tokens) = spool_incidents(&spool);
    // exactly-once incidents: no frame token appears twice in the spool
    assert_eq!(
        tokens.iter().collect::<HashSet<_>>().len(),
        tokens.len(),
        "an incident frame token appears twice: {tokens:?}"
    );
    // zero admitted-frame loss and no double-application: the tortured
    // run's localization output matches the uninterrupted run exactly
    assert_eq!(
        tortured, baseline,
        "crash/restart incident output must be byte-identical to the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&spool);
}

/// The committed golden checkpoint: written by `rapminer serve` at the
/// current format version via [`regenerate_golden_checkpoint_fixture`],
/// then pinned in-tree. A future build that cannot boot from it has
/// broken forward compatibility.
fn fixture_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/checkpoint_v1.jsonl")
}

/// The frames used to produce (and resume past) the golden fixture.
fn golden_stream() -> (Schema, WireFrames) {
    outage_stream(30, usize::MAX, 20220607)
}

#[test]
fn golden_checkpoint_from_a_previous_run_still_boots() {
    require_binary!();
    let fixture = fixture_path();
    assert!(
        fixture.is_file(),
        "missing {}; run `cargo test --test crash_recovery -- --ignored` to regenerate",
        fixture.display()
    );
    let (schema, frames) = golden_stream();
    let spool = temp_spool("golden");
    std::fs::create_dir_all(spool.join("checkpoints")).expect("checkpoints dir");
    std::fs::copy(&fixture, spool.join("checkpoints").join("edge.json")).expect("plant fixture");

    let mut daemon = spawn_daemon(&spool);
    let mut client = Client::connect(&daemon.addr);
    ok(client.request(&schema_line("edge", &schema)));
    // resume past the snapshot: ten more frames must process cleanly
    for rows in frames.iter().take(10) {
        ok(client.request(&observe_line("edge", rows)));
    }
    let reply = ok(client.request(r#"{"type":"flush"}"#));
    assert_eq!(reply.get("flushed").and_then(Json::as_bool), Some(true));

    let debug = client.request(r#"{"type":"debug"}"#);
    let durability = debug.get("durability").unwrap();
    assert_eq!(
        durability.get("checkpoint_restores").and_then(Json::as_u64),
        Some(1),
        "the golden checkpoint must restore: {durability}"
    );
    assert_eq!(
        durability.get("detector_rewarms").and_then(Json::as_u64),
        Some(0),
        "{durability}"
    );
    let stats = client.request(r#"{"type":"stats"}"#);
    assert_accounting(&stats);

    let reply = ok(client.request(r#"{"type":"shutdown"}"#));
    assert_eq!(reply.get("draining").and_then(Json::as_bool), Some(true));
    assert!(daemon.child.wait().expect("wait").success());
    let _ = std::fs::remove_dir_all(&spool);
}

/// Regenerates `tests/fixtures/checkpoint_v1.jsonl` with the current
/// binary. Run manually (`cargo test --test crash_recovery -- --ignored`)
/// when the checkpoint format version is bumped, and commit the result.
#[test]
#[ignore = "writes the golden fixture; run manually on a format bump"]
fn regenerate_golden_checkpoint_fixture() {
    require_binary!();
    let (schema, frames) = golden_stream();
    let spool = temp_spool("golden-gen");
    let mut daemon = spawn_daemon(&spool);
    let mut client = Client::connect(&daemon.addr);
    ok(client.request(&schema_line("edge", &schema)));
    for rows in &frames {
        ok(client.request(&observe_line("edge", rows)));
    }
    // the graceful drain checkpoints every tenant before the reply
    let reply = ok(client.request(r#"{"type":"shutdown"}"#));
    assert_eq!(reply.get("draining").and_then(Json::as_bool), Some(true));
    assert!(daemon.child.wait().expect("wait").success());

    let written = spool.join("checkpoints").join("edge.json");
    std::fs::create_dir_all(fixture_path().parent().unwrap()).expect("fixtures dir");
    std::fs::copy(&written, fixture_path()).expect("copy fixture into the tree");
    let _ = std::fs::remove_dir_all(&spool);
    eprintln!("wrote {}", fixture_path().display());
}
