//! Parameter tuning walkthrough: sweep RAPMiner's two thresholds on a
//! held-out slice of RAPMD and read the trade-offs directly — the
//! library-API version of the paper's Fig. 10 and Table VI.
//!
//! ```sh
//! cargo run --release --example parameter_tuning
//! ```

use rapminer_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // a tuning slice: 25 RAPMD-style failures
    let ds = RapmdGenerator::new(RapmdConfig {
        num_failures: 25,
        paper_topology: false,
        ..RapmdConfig::default()
    })
    .generate(2024);
    println!("tuning slice: {} failures\n", ds.cases.len());

    // --- t_CP: effectiveness vs search volume ----------------------------
    println!("t_CP sweep (Criteria 1 threshold — how aggressively to delete attributes):");
    let mut table = Table::new(["t_CP", "RC@3", "mean s", "combos visited/case"]);
    for t_cp in [0.0005, 0.001, 0.005, 0.02, 0.1] {
        let config = Config::new().with_t_cp(t_cp)?;
        let localizer = RapMinerLocalizer::with_config(config);
        let outcome = evaluate_rc(&localizer, &ds.cases, &[3]);
        // measure search volume with the diagnostics API
        let miner = RapMiner::with_config(config);
        let mut visited = 0usize;
        for case in &ds.cases {
            let (_, stats) = miner.localize_with_stats(&case.frame, 3)?;
            visited += stats.combos_visited;
        }
        table.row([
            format!("{t_cp}"),
            format!("{:.3}", outcome.rc[0].1),
            format!("{:.4}", outcome.mean_seconds),
            format!("{}", visited / ds.cases.len()),
        ]);
    }
    println!("{table}");

    // --- t_conf: the error-tolerance knob --------------------------------
    println!("t_conf sweep (Criteria 2 threshold — how anomalous a pattern must be):");
    let mut table = Table::new(["t_conf", "RC@3"]);
    for t_conf in [0.55, 0.7, 0.8, 0.9, 0.99] {
        let config = Config::new().with_t_conf(t_conf)?;
        let outcome = evaluate_rc(&RapMinerLocalizer::with_config(config), &ds.cases, &[3]);
        table.row([format!("{t_conf}"), format!("{:.3}", outcome.rc[0].1)]);
    }
    println!("{table}");

    println!(
        "reading: pick t_CP at the flat part of the curve just before RC@3\n\
         drops (deleting more attributes buys speed but loses small RAPs);\n\
         t_conf is stable across (0.5, 1) on clean labels — lower it toward\n\
         0.7-0.8 when upstream detection is noisy"
    );
    Ok(())
}
