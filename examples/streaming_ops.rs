//! The full streaming operations loop of the paper's Fig. 1: the simulator
//! plays an ISP CDN emitting per-leaf KPI snapshots every minute, the
//! pipeline watches the overall KPI, and when an injected failure trips the
//! alarm, localization fires and names the affected scope.
//!
//! ```sh
//! cargo run --release --example streaming_ops
//! ```

use rapminer_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const SEED: u64 = 404;
    const START: usize = 2 * 24 * 60; // day 3, 00:00
    const FAILURE_AT: usize = 90; // step at which the incident starts
    const STEPS: usize = 120;

    let topology = CdnTopology::small(SEED);
    let schema = topology.schema().clone();
    let model = TrafficModel::new(topology, TrafficConfig::default(), SEED);
    let truth = schema.parse_combination("location=L4")?;

    let mut pipe = LocalizationPipeline::new(
        PipelineConfig {
            history_len: 60,
            warmup: 15,
            alarm_threshold: 0.08,
            leaf_threshold: 0.3,
            k: 3,
            ..PipelineConfig::default()
        },
        // minute-scale smoothing: traffic moves slowly minute to minute
        MovingAverage::new(10),
        RapMinerLocalizer::default(),
    );

    let injector = FailureInjector::new(0.5, 0.9);
    let mut incidents = Vec::new();
    for step in 0..STEPS {
        let minute = START + step;
        let mut snapshot = model.snapshot(minute);
        if step >= FAILURE_AT {
            injector.inject(&mut snapshot, std::slice::from_ref(&truth), minute as u64);
        }
        if let Some(report) = pipe.observe(&snapshot)? {
            println!("{}", report.summary());
            incidents.push(report);
            if incidents.len() == 1 {
                println!(
                    "(first alarm {} steps after failure onset)",
                    step + 1 - FAILURE_AT
                );
            }
            if incidents.len() >= 3 {
                break; // the on-call has seen enough
            }
        }
    }

    let first = incidents.first().expect("the failure must raise an alarm");
    assert_eq!(
        first.raps.first().map(|r| r.combination.clone()),
        Some(truth.clone()),
        "first alarm must already localize the failure"
    );
    println!("=> confirmed: switch users served by {truth} to backup edge nodes");
    Ok(())
}
