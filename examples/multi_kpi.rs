//! Multi-KPI triage: the same incident viewed through three KPIs at once —
//! raw traffic, cache-hit ratio and mean response delay — merged into one
//! ranked verdict. Patterns anomalous in several KPIs outrank single-KPI
//! blips (§II-A: operators monitor "traffic volume, cache hit ratio and
//! server response delay, etc.").
//!
//! ```sh
//! cargo run --release --example multi_kpi
//! ```

use cdnsim::{derive_hit_ratio, derive_mean_delay};
use pipeline::localize_multi_kpi;
use rapminer_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const SEED: u64 = 61;
    const MINUTE: usize = 20 * 60;

    let topology = CdnTopology::small(SEED);
    let schema = topology.schema().clone();
    let model = TrafficModel::new(topology, TrafficConfig::default(), SEED);

    // fundamental KPIs at the alarmed minute
    let mut requests = model.snapshot_kpi(MINUTE, KpiKind::Requests);
    let mut hits = model.snapshot_kpi(MINUTE, KpiKind::CacheHits);
    let delay = model.snapshot_kpi(MINUTE, KpiKind::TotalDelayMs);

    // the incident: edge node L2 degrades — it loses traffic AND its cache
    // tier falls over, while delays stay nominal
    let truth = schema.parse_combination("location=L2")?;
    let injector = FailureInjector::new(0.5, 0.9);
    injector.inject(&mut requests, std::slice::from_ref(&truth), SEED);
    injector.inject(&mut hits, std::slice::from_ref(&truth), SEED + 1);

    // derived KPIs from the (partially degraded) fundamentals
    let hit_ratio = derive_hit_ratio(&hits, &requests);
    let mean_delay = derive_mean_delay(&delay, &requests);

    // detect per KPI
    let detector = DeviationThreshold::new(0.3);
    let label = |mut frame: LeafFrame| -> LeafFrame {
        frame.label_with(|v, f| detector.is_anomalous(v, f));
        frame
    };
    let traffic = label(requests);
    let ratio = label(hit_ratio);
    let delays = label(mean_delay);
    println!(
        "anomalous leaves — traffic: {}, hit_ratio: {}, mean_delay: {}",
        traffic.num_anomalous(),
        ratio.num_anomalous(),
        delays.num_anomalous()
    );

    // one merged verdict
    let report = localize_multi_kpi(
        &RapMinerLocalizer::default(),
        &[
            ("traffic", &traffic),
            ("hit_ratio", &ratio),
            ("mean_delay", &delays),
        ],
        3,
    )?;
    println!("merged verdict:");
    for m in &report.merged {
        println!(
            "  {}  seen in {:?} (score {:.3})",
            m.combination, m.kpis, m.score
        );
    }
    let top = &report.merged[0];
    assert_eq!(top.combination, truth);
    assert!(top.kpis.len() >= 2, "must be corroborated by several KPIs");
    println!(
        "=> {} is failing across {} KPIs; page the edge-node team",
        top.combination,
        top.kpis.len()
    );
    Ok(())
}
