//! Quickstart: localize a root anomaly pattern from a hand-written leaf
//! table in ~20 lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rapminer_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The alarmed timestamp's most-fine-grained KPI table: every
    // (location, website) pair with its actual value `v` and forecast `f`.
    let schema = Schema::builder()
        .attribute("location", ["L1", "L2", "L3"])
        .attribute("website", ["Site1", "Site2"])
        .build()?;

    let mut builder = LeafFrame::builder(&schema);
    // L1 lost most of its traffic on both sites — the failure.
    builder.push_named(&[("location", "L1"), ("website", "Site1")], 12.0, 100.0)?;
    builder.push_named(&[("location", "L1"), ("website", "Site2")], 30.0, 80.0)?;
    // everything else is on forecast
    builder.push_named(&[("location", "L2"), ("website", "Site1")], 98.0, 100.0)?;
    builder.push_named(&[("location", "L2"), ("website", "Site2")], 81.0, 80.0)?;
    builder.push_named(&[("location", "L3"), ("website", "Site1")], 102.0, 100.0)?;
    builder.push_named(&[("location", "L3"), ("website", "Site2")], 79.0, 80.0)?;
    let mut frame = builder.build();

    // Step 1 — per-leaf anomaly detection (the paper's Eq. 4 deviation).
    let detector = DeviationThreshold::new(0.2);
    frame.label_with(|v, f| detector.is_anomalous(v, f));
    println!(
        "detected {} anomalous of {} leaves",
        frame.num_anomalous(),
        frame.num_rows()
    );

    // Step 2 — mine the root anomaly patterns.
    let miner = RapMiner::new();
    let raps = miner.localize(&frame, 3)?;

    println!("root anomaly patterns (best first):");
    for rap in &raps {
        println!(
            "  {}  (confidence {:.2}, layer {}, RAPScore {:.3})",
            rap.combination, rap.confidence, rap.layer, rap.score
        );
    }
    assert_eq!(raps[0].combination.to_string(), "(L1, *)");
    Ok(())
}
