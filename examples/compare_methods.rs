//! Head-to-head comparison of RAPMiner against every baseline on freshly
//! generated benchmark data — a miniature of the paper's Fig. 8.
//!
//! ```sh
//! cargo run --release --example compare_methods
//! ```

use rapminer_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const SEED: u64 = 99;

    // --- Squeeze-B0-style data (assumptions hold) ------------------------
    let squeeze_ds = SqueezeGenerator::new(SqueezeGenConfig {
        attribute_sizes: vec![8, 6, 5, 4],
        cases_per_group: 3,
        ..SqueezeGenConfig::default()
    })
    .generate(SEED);
    println!(
        "Squeeze-B0-style dataset: {} cases over {} groups\n",
        squeeze_ds.cases.len(),
        squeeze_ds.group_names().len()
    );
    let mut table = Table::new(["method", "precision", "recall", "F1", "mean s"]);
    for method in all_localizers() {
        let outcome = evaluate_f1(method.as_ref(), &squeeze_ds.cases);
        table.row([
            method.name().to_string(),
            format!("{:.3}", outcome.precision),
            format!("{:.3}", outcome.recall),
            format!("{:.3}", outcome.f1),
            format!("{:.4}", outcome.mean_seconds),
        ]);
    }
    println!("{table}");

    // --- RAPMD-style data (assumptions violated) -------------------------
    let rapmd = RapmdGenerator::new(RapmdConfig {
        num_failures: 20,
        paper_topology: false, // small topology keeps the example snappy
        ..RapmdConfig::default()
    })
    .generate(SEED);
    println!(
        "RAPMD-style dataset: {} failures with 1-3 RAPs each\n",
        rapmd.cases.len()
    );
    let mut table = Table::new(["method", "RC@3", "RC@5", "mean s"]);
    for method in all_localizers() {
        let outcome = evaluate_rc(method.as_ref(), &rapmd.cases, &[3, 5]);
        table.row([
            method.name().to_string(),
            format!("{:.3}", outcome.rc[0].1),
            format!("{:.3}", outcome.rc[1].1),
            format!("{:.4}", outcome.mean_seconds),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape (paper Fig. 8): everyone is strong on Squeeze-B0;\n\
         on RAPMD the assumption-dependent methods (squeeze, adtributor)\n\
         degrade while rapminer stays on top"
    );
    Ok(())
}
