//! End-to-end CDN incident drill on the simulator: generate background
//! traffic, *forecast each leaf from its own history with Holt-Winters*,
//! inject a failure, detect per-leaf anomalies, and localize the root
//! anomaly patterns — the full operational pipeline of the paper's Fig. 1.
//!
//! Unlike `quickstart`, the forecast column here really comes from a
//! forecaster fitted on simulated history, not from the generator's ground
//! truth.
//!
//! ```sh
//! cargo run --release --example cdn_incident
//! ```

use rapminer_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const SEED: u64 = 7;
    const ALARM_MINUTE: usize = 6 * 24 * 60 + 21 * 60; // day 7, 21:00 (peak)
    const HISTORY_POINTS: usize = 3 * 24 * 60; // three days of history

    // 1. a small CDN deployment (5 locations × 2 access × 3 OS × 6 sites)
    let topology = CdnTopology::small(SEED);
    let schema = topology.schema().clone();
    let model = TrafficModel::new(topology, TrafficConfig::default(), SEED);
    println!(
        "deployment: {} leaves, {} active",
        model.topology().num_leaves(),
        model.num_active_leaves()
    );

    // 2. the incident: edge node L2 fails for wireless users
    let truth = schema.parse_combination("location=L2&access=wireless")?;
    let mut frame = model.snapshot(ALARM_MINUTE);
    let injector = FailureInjector::new(0.4, 0.9);
    let failure = injector.inject(&mut frame, std::slice::from_ref(&truth), SEED);
    println!(
        "injected failure {} affecting {} leaves",
        truth,
        failure.affected_rows.len()
    );

    // 3. forecast each leaf from its own history (Holt-Winters, daily
    //    seasonality at minute granularity) and overwrite the forecast
    //    column with the fitted model's prediction
    let forecaster = HoltWinters::new(0.3, 0.05, 0.3, 24 * 60);
    let mut builder = LeafFrame::builder(&schema);
    for i in 0..frame.num_rows() {
        let elements = frame.row_elements(i).to_vec();
        // find the model's leaf index for history generation
        let leaf_index = (0..model.topology().num_leaves())
            .find(|&l| model.topology().leaf_elements(l) == elements)
            .expect("leaf exists");
        let history = model.history(leaf_index, ALARM_MINUTE, HISTORY_POINTS);
        let forecast = forecaster.forecast_next(&history);
        builder.push(&elements, frame.v(i), forecast.max(0.0));
    }
    let mut frame = builder.build();

    // 4. detect per-leaf anomalies against the fitted forecasts
    let detector = DeviationThreshold::new(0.3);
    frame.label_with(|v, f| detector.is_anomalous(v, f));
    println!(
        "detection: {} of {} leaves anomalous",
        frame.num_anomalous(),
        frame.num_rows()
    );

    // 5. localize
    let miner = RapMiner::new();
    let raps = miner.localize(&frame, 3)?;
    println!("localization result:");
    for rap in &raps {
        println!(
            "  {}  (confidence {:.2}, RAPScore {:.3})",
            rap.combination, rap.confidence, rap.score
        );
    }

    // 6. verdict: with real forecasts and detection noise the exact RAP
    //    should still be the top answer
    match raps.first() {
        Some(top) if top.combination == truth => {
            println!("=> recovered the injected root anomaly pattern; switch wireless users of L2 to backup nodes")
        }
        Some(top) => println!(
            "=> top answer {} differs from injected {} (detection noise)",
            top.combination, truth
        ),
        None => println!("=> no anomaly found"),
    }
    Ok(())
}
