//! Localizing on a **derived KPI** — the cache-hit ratio — exercising the
//! paper's Fig. 4 pipeline: fundamental KPIs are generated per leaf, the
//! derived KPI is computed leaf-wise, detection runs on the derived values,
//! and RAPMiner consumes only the labels (it is agnostic to whether the KPI
//! was fundamental or derived, §IV-B).
//!
//! Scenario: the cache tier at location L3 starts missing (hit ratio
//! collapses) while raw request volume stays normal — invisible in
//! traffic KPIs, obvious in the derived one.
//!
//! ```sh
//! cargo run --release --example derived_kpi
//! ```

use cdnsim::derive_hit_ratio;
use rapminer_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const SEED: u64 = 31;
    const MINUTE: usize = 12 * 60;

    let topology = CdnTopology::small(SEED);
    let schema = topology.schema().clone();
    let model = TrafficModel::new(topology, TrafficConfig::default(), SEED);

    // fundamental KPIs at the alarmed minute
    let requests = model.snapshot_kpi(MINUTE, KpiKind::Requests);
    let mut hits = model.snapshot_kpi(MINUTE, KpiKind::CacheHits);

    // the incident: the cache tier of L3 degrades — its hit *count*
    // collapses while requests are unchanged
    let truth = schema.parse_combination("location=L3")?;
    let injector = FailureInjector::new(0.5, 0.9);
    let failure = injector.inject(&mut hits, std::slice::from_ref(&truth), SEED);
    println!(
        "injected cache degradation at {} ({} leaves affected)",
        truth,
        failure.affected_rows.len()
    );

    // derived KPI: hit ratio = hits / requests, leaf-wise (Fig. 4's g)
    let hit_ratio = derive_hit_ratio(&hits, &requests);

    // detection on the derived KPI
    let detector = DeviationThreshold::new(0.3);
    let mut frame = hit_ratio;
    frame.label_with(|v, f| detector.is_anomalous(v, f));
    println!(
        "detection on cache_hit_ratio: {} of {} leaves anomalous",
        frame.num_anomalous(),
        frame.num_rows()
    );

    // sanity: the raw traffic KPI shows nothing
    let mut traffic_check = requests.clone();
    traffic_check.label_with(|v, f| detector.is_anomalous(v, f));
    println!(
        "detection on raw requests:    {} of {} leaves anomalous (failure is invisible here)",
        traffic_check.num_anomalous(),
        traffic_check.num_rows()
    );

    // localization needs only the labels — no fundamental/derived split
    let raps = RapMiner::new().localize(&frame, 3)?;
    println!("root anomaly patterns on the derived KPI:");
    for rap in &raps {
        println!("  {}  (confidence {:.2})", rap.combination, rap.confidence);
    }
    assert_eq!(
        raps.first().map(|r| r.combination.clone()),
        Some(truth),
        "the cache incident must localize to L3"
    );
    println!("=> cache tier at L3 needs attention");
    Ok(())
}
