//! # rapminer-suite — facade for the RAPMiner reproduction
//!
//! One `use rapminer_suite::prelude::*` pulls in everything needed to run
//! the full pipeline of *RAPMiner: A Generic Anomaly Localization Mechanism
//! for CDN System with Multi-dimensional KPIs* (DSN 2022):
//!
//! 1. model multi-dimensional KPIs ([`mdkpi`]),
//! 2. simulate CDN traffic or load real CSVs ([`cdnsim`], [`mdkpi`] I/O),
//! 3. forecast and detect per-leaf anomalies ([`timeseries`]),
//! 4. localize root anomaly patterns with RAPMiner ([`rapminer`]) or any
//!    baseline ([`baselines`]),
//! 5. evaluate with the paper's protocols ([`eval`]) on the paper's
//!    datasets ([`datasets`]).
//!
//! The `examples/` directory walks through realistic scenarios; the
//! `crates/bench` binaries regenerate every table and figure of the paper.
//!
//! # Quickstart
//!
//! ```
//! use rapminer_suite::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // leaf table at the alarmed timestamp: (attributes..., v, f)
//! let schema = Schema::builder()
//!     .attribute("location", ["L1", "L2"])
//!     .attribute("website", ["Site1", "Site2"])
//!     .build()?;
//! let mut builder = LeafFrame::builder(&schema);
//! builder.push_named(&[("location", "L1"), ("website", "Site1")], 5.0, 10.0)?;
//! builder.push_named(&[("location", "L1"), ("website", "Site2")], 4.0, 9.0)?;
//! builder.push_named(&[("location", "L2"), ("website", "Site1")], 10.0, 10.0)?;
//! builder.push_named(&[("location", "L2"), ("website", "Site2")], 9.0, 9.0)?;
//! let mut frame = builder.build();
//!
//! // detect per-leaf anomalies (Eq. 4 deviation threshold)
//! let detector = DeviationThreshold::new(0.2);
//! frame.label_with(|v, f| detector.is_anomalous(v, f));
//!
//! // localize
//! let raps = RapMiner::new().localize(&frame, 3)?;
//! assert_eq!(raps[0].combination.to_string(), "(L1, *)");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use baselines;
pub use cdnsim;
pub use datasets;
pub use detect;
pub use eval;
pub use mdkpi;
pub use pipeline;
pub use rapminer;
pub use timeseries;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use baselines::{
        all_localizers, Adtributor, FpGrowthLocalizer, HotSpot, IDice, Localizer,
        RapMinerLocalizer, ScoredCombination, Squeeze,
    };
    pub use cdnsim::{
        AnomalyStream, AnomalyStreamConfig, CdnTopology, FailureInjector, KpiKind, TrafficConfig,
        TrafficModel,
    };
    pub use datasets::{
        load_dataset, save_dataset, Dataset, LocalizationCase, RapmdConfig, RapmdGenerator,
        SqueezeGenConfig, SqueezeGenerator,
    };
    pub use detect::{DetectorConfig, FrameDetector, Severity};
    pub use eval::{evaluate_detection, evaluate_f1, evaluate_rc, f1_score, rc_at_k, Table};
    pub use mdkpi::{
        read_frame_csv, write_frame_csv, Combination, Cuboid, CuboidLattice, LeafFrame, LeafIndex,
        Schema,
    };
    pub use pipeline::{DetectingPipeline, IncidentReport, LocalizationPipeline, PipelineConfig};
    pub use rapminer::{classification_power, Config, MinedRap, RapMiner};
    pub use timeseries::{
        DeviationThreshold, Ewma, Forecaster, HoltWinters, MovingAverage, PointDetector,
        SeasonalNaive, SigmaDetector,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_names_resolve() {
        use crate::prelude::*;
        let methods = all_localizers();
        assert!(methods.len() >= 6);
        let _ = RapMiner::new();
        let _ = Config::new();
    }
}
